"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the machine-readable side of observability: hot paths
increment counters and observe histograms, and a run ends with one
:meth:`MetricsRegistry.snapshot` — a plain, JSON-serializable dict that
benchmarks persist next to their wall-time series and ``repro stats``
renders for humans.

Design constraints, in order:

* **Cheap when active** — a counter increment is a dict lookup plus a
  float add; nothing allocates per event.  Hot loops that cannot afford
  even that (cursor probes inside greedy) accumulate plain ints locally
  and flush once per solve.
* **No-op when asked** — :class:`NullRegistry` implements the same API
  with shared do-nothing instruments, so instrumented code needs no
  ``if`` guards and the overhead-guard test can measure instrumentation
  cost as a simple A/B.
* **Mergeable** — worker processes run with a fresh registry and ship
  its snapshot back; :meth:`MetricsRegistry.merge` folds those deltas
  into the parent, making parallel runs observable end to end.

Histogram buckets are **fixed at creation** (explicit upper bounds plus
an implicit overflow bucket).  Fixed boundaries keep snapshots mergeable
and runs comparable; the module ships boundary sets tuned for solver
wall-times and simulated detection latencies.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DETECTION_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SCORE_BUCKETS",
]

#: Upper bounds (seconds) for solve/evaluation wall-time histograms:
#: sub-millisecond engine passes up to the paper's "within minutes".
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Upper bounds (simulated seconds) for detection-latency histograms;
#: campaigns space attack steps ~30 s apart, so latencies land between
#: one step gap and one hour.
DETECTION_LATENCY_BUCKETS: tuple[float, ...] = (
    1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

#: Upper bounds for scores and other quantities normalized to [0, 1].
SCORE_BUCKETS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount!r})")
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution over fixed bucket boundaries.

    ``bounds`` are strictly increasing upper bounds; an observation
    lands in the first bucket whose bound is >= the value, or in the
    implicit overflow bucket past the last bound.  ``sum``/``count``/
    ``min``/``max`` are tracked exactly alongside the bucketed shape.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} bounds must be strictly increasing: {bounds}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (nan when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable state (per-bucket counts, not cumulative)."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics and one snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] | None = None) -> Histogram:
        """The histogram called ``name``, created on first use.

        ``bounds`` applies only at creation (default: the solve-time
        boundaries); asking again with *different* bounds is an error —
        silently returning mismatched buckets would corrupt merges.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_SECONDS_BUCKETS
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with bounds {instrument.bounds}, "
                f"requested {tuple(bounds)}"
            )
        return instrument

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """The registry's full state as a plain, JSON-serializable dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the snapshot's
        value (last write wins).  Histogram bound mismatches raise.
        """
        for name, value in dict(snapshot.get("counters", {})).items():  # type: ignore[arg-type]
            self.counter(name).inc(float(value))
        for name, value in dict(snapshot.get("gauges", {})).items():  # type: ignore[arg-type]
            self.gauge(name).set(float(value))
        for name, state in dict(snapshot.get("histograms", {})).items():  # type: ignore[arg-type]
            incoming_bounds = tuple(float(b) for b in state["bounds"])
            histogram = self.histogram(name, incoming_bounds)
            for index, bucket_count in enumerate(state["bucket_counts"]):
                histogram.bucket_counts[index] += int(bucket_count)
            histogram.overflow += int(state["overflow"])
            histogram.count += int(state["count"])
            histogram.sum += float(state["sum"])
            if state["min"] is not None:
                histogram.min = min(histogram.min, float(state["min"]))
            if state["max"] is not None:
                histogram.max = max(histogram.max, float(state["max"]))

    def reset(self) -> None:
        """Drop every instrument (names and values)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Same API, records nothing: the overhead-guard baseline.

    Every accessor returns a shared do-nothing instrument, so call
    sites pay only the method dispatch — the closest honest "zero" an
    instrumented code path can be compared against.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", (1.0,))

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, bounds: Sequence[float] | None = None) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Mapping[str, object]) -> None:
        pass
