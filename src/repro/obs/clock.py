"""Injectable clocks for deterministic instrumentation.

Every timestamp the observability layer records flows through a clock
object, never through a direct ``time`` call.  Production code uses
:class:`SystemClock` (``time.perf_counter``: monotonic, sub-microsecond
resolution, arbitrary origin); tests inject :class:`ManualClock`, whose
readings are a pure function of how often it has been read — so span
trees, durations, and solve-time histograms become bit-reproducible
artifacts the determinism suite can compare across runs.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "ManualClock", "SystemClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` method, in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class SystemClock:
    """Monotonic wall-clock readings from ``time.perf_counter``."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A clock that only moves when told to (or a fixed step per reading).

    Parameters
    ----------
    start:
        Initial reading.
    autostep:
        Amount the clock advances *after* every ``now()`` call.  A
        nonzero autostep gives every span distinct, deterministic begin
        and end times without any explicit ``advance`` calls — the mode
        the tracer determinism tests run in.
    """

    __slots__ = ("_now", "autostep")

    def __init__(self, start: float = 0.0, autostep: float = 0.0) -> None:
        self._now = float(start)
        self.autostep = float(autostep)

    def now(self) -> float:
        value = self._now
        self._now += self.autostep
        return value

    def advance(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError(f"cannot move a clock backwards (delta={delta!r})")
        self._now += delta
