"""Span-based tracing with explicit clocks.

A :class:`Span` is one timed, named region of work with optional
key/value arguments and child spans; a :class:`Tracer` maintains the
ambient span stack and collects completed root spans into a forest that
exports to Chrome trace format (see :mod:`repro.obs.export`).

Two properties matter more than features:

* **Explicit clocks** — a tracer never reads time directly; it asks its
  injected :class:`~repro.obs.clock.Clock`.  With a
  :class:`~repro.obs.clock.ManualClock` the whole span tree (names,
  nesting, begin/end times, durations) is a deterministic function of
  the code path, which is what the determinism suite asserts.
* **Timing without retention** — a tracer built with ``keep=False``
  (the ambient default) still times every span, so call sites can use
  ``span.stop()`` as their single source of wall-time, but it builds no
  tree and holds no references.  Enabling tracing is therefore purely
  additive: the timed values do not change, they just get recorded.

Worker processes trace into their own tracer and ship
:meth:`Tracer.export_spans` payloads (plain dicts) back to the parent,
which grafts them into its tree via :meth:`Tracer.attach` — rebasing
worker-local clock origins so the merged trace stays viewable.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.obs.clock import Clock, SystemClock

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region; usable as a context manager.

    Entering starts the clock and pushes the span on its tracer's
    stack; exiting (or an explicit, idempotent :meth:`stop`) ends it
    and files it under its parent.  ``duration`` is valid after stop.
    """

    __slots__ = ("name", "args", "begin", "end", "tid", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]) -> None:
        self.name = name
        self.args = args
        self.begin = 0.0
        self.end: float | None = None
        self.tid: str | None = None
        self.children: list[Span] = []
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self.begin = self._tracer.clock.now()
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> float:
        """End the span (first call wins) and return its duration."""
        if self.end is None:
            self.end = self._tracer.clock.now()
            self._tracer._pop(self)
        return self.end - self.begin

    @property
    def duration(self) -> float:
        """Seconds between begin and end (0 while still running)."""
        return 0.0 if self.end is None else self.end - self.begin

    def set(self, **args: Any) -> None:
        """Attach/overwrite argument values after the span started."""
        self.args.update(args)

    # -- transport ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (picklable/JSON-able) including children."""
        return {
            "name": self.name,
            "begin": self.begin,
            "end": self.end if self.end is not None else self.begin,
            "args": dict(self.args),
            "tid": self.tid,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, tracer: "Tracer", payload: Mapping[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        span = cls(tracer, str(payload["name"]), dict(payload.get("args", {})))
        span.begin = float(payload["begin"])
        span.end = float(payload["end"])
        span.tid = payload.get("tid")
        span.children = [cls.from_dict(tracer, child) for child in payload.get("children", [])]
        return span

    def _shift(self, offset: float) -> None:
        self.begin += offset
        if self.end is not None:
            self.end += offset
        for child in self.children:
            child._shift(offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f} ms" if self.end is not None else "running"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class Tracer:
    """Span factory, ambient stack, and completed-span forest.

    Parameters
    ----------
    clock:
        Time source for every span (default: the system clock).
    keep:
        When ``False``, spans are timed but never retained — the cheap
        always-on mode instrumented code runs under by default.
    """

    def __init__(self, clock: Clock | None = None, *, keep: bool = True) -> None:
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.keep = keep
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **args: Any) -> Span:
        """A new span; use as ``with tracer.span("name", k=v) as sp:``."""
        return Span(self, name, args)

    # -- stack maintenance (called by Span) --------------------------------

    def _push(self, span: Span) -> None:
        if self.keep:
            self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self.keep:
            return
        # Tolerate out-of-order stops (a child outliving its parent's
        # ``with`` block): unwind to the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._file(span)

    def _file(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- merging -----------------------------------------------------------

    def export_spans(self) -> list[dict[str, Any]]:
        """The completed forest as plain dicts (for worker transport)."""
        return [span.to_dict() for span in self.roots]

    def attach(
        self,
        payload: Iterable[Mapping[str, Any]],
        *,
        tid: str | None = None,
        at: float | None = None,
    ) -> None:
        """Graft foreign span trees (from :meth:`export_spans`) here.

        Foreign spans carry their origin process's clock readings, which
        are not comparable with ours; the whole payload is shifted so
        its earliest ``begin`` lands at ``at`` (default: now).  ``tid``
        tags every attached root (exported as a separate trace row).
        Attached trees keep their internal structure and durations.
        """
        if not self.keep:
            return
        spans = [Span.from_dict(self, item) for item in payload]
        if not spans:
            return
        base = at if at is not None else self.clock.now()
        origin = min(span.begin for span in spans)
        for span in spans:
            span._shift(base - origin)
            if tid is not None:
                span.tid = tid
            self._file(span)

    def reset(self) -> None:
        """Drop all completed and in-flight spans."""
        self.roots.clear()
        self._stack.clear()
