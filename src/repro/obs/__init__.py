"""Observability: metrics registry + span tracer for every hot path.

The paper's headline claim is operational ("optimal deployments for
hundreds of monitors compute within minutes"); this package is how the
repository *shows* it.  Solvers, the evaluation engine, the cache, the
process pool, and the simulation all report into one ambient pair of
instruments:

* a :class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) that is always on and cheap, and
* a :class:`~repro.obs.tracer.Tracer` that always *times* spans but
  only *retains* them when tracing is enabled (``keep=True``).

Instrumented code never holds direct references to either — it calls
the module-level accessors (:func:`counter`, :func:`histogram`,
:func:`span`, ...), which read the ambient state swapped by
:func:`use` and :func:`capture`.  That indirection is what makes the
overhead guard, the no-op baseline, worker-process capture, and the
CLI's ``--trace`` all composable without touching call sites.

Typical shapes::

    from repro import obs

    # always-on metrics
    obs.counter("cache.hits").inc()
    obs.histogram("solver.solve_seconds").observe(dt)

    # timed region (retained only when tracing is enabled)
    with obs.span("optimize.greedy", monitors=n) as sp:
        ...
    seconds = sp.duration

    # a fully captured run (fresh registry + retaining tracer)
    with obs.capture() as cap:
        run()
    write_trace("trace.json", cap.tracer, cap.registry)

Everything here is standard library only and imports nothing from the
rest of ``repro``, so any layer may depend on it without cycles.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.obs.clock import Clock, ManualClock, SystemClock
from repro.obs.export import chrome_trace_events, load_trace, trace_payload, write_trace
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    DETECTION_LATENCY_BUCKETS,
    SCORE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Capture",
    "Clock",
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DETECTION_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NullRegistry",
    "SCORE_BUCKETS",
    "Span",
    "SystemClock",
    "Tracer",
    "capture",
    "chrome_trace_events",
    "counter",
    "gauge",
    "histogram",
    "load_trace",
    "registry",
    "span",
    "trace_payload",
    "tracer",
    "use",
    "write_trace",
]

#: Ambient instruments.  Metrics are on by default (cheap); the default
#: tracer times spans but retains nothing until tracing is enabled.
_REGISTRY: MetricsRegistry = MetricsRegistry()
_TRACER: Tracer = Tracer(keep=False)


def registry() -> MetricsRegistry:
    """The ambient metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The ambient tracer."""
    return _TRACER


def counter(name: str) -> Counter:
    """Shorthand for ``registry().counter(name)``."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``registry().gauge(name)``."""
    return _REGISTRY.gauge(name)


def histogram(name: str, bounds: Sequence[float] | None = None) -> Histogram:
    """Shorthand for ``registry().histogram(name, bounds)``."""
    return _REGISTRY.histogram(name, bounds)


def span(name: str, **args: Any) -> Span:
    """Shorthand for ``tracer().span(name, **args)``."""
    return _TRACER.span(name, **args)


@contextmanager
def use(
    registry: MetricsRegistry | None = None, tracer: Tracer | None = None
) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Temporarily swap the ambient registry and/or tracer.

    Restores the previous instruments on exit, exception or not.  Not
    safe across threads (the ambient state is process-global by
    design — worker *processes* each get their own).
    """
    global _REGISTRY, _TRACER
    previous = (_REGISTRY, _TRACER)
    if registry is not None:
        _REGISTRY = registry
    if tracer is not None:
        _TRACER = tracer
    try:
        yield (_REGISTRY, _TRACER)
    finally:
        _REGISTRY, _TRACER = previous


@dataclass(frozen=True)
class Capture:
    """The instruments a :func:`capture` block recorded into."""

    registry: MetricsRegistry
    tracer: Tracer


@contextmanager
def capture(clock: Clock | None = None) -> Iterator[Capture]:
    """Observe one region in isolation: fresh registry, retaining tracer.

    This is the primitive behind the CLI's ``--trace`` and the
    process-pool worker wrapper: everything recorded inside the block
    lands in the yielded :class:`Capture` and nowhere else, ready to be
    written out (:func:`write_trace`) or shipped back and merged into a
    parent (:meth:`Tracer.attach` / :meth:`MetricsRegistry.merge`).
    """
    captured = Capture(MetricsRegistry(), Tracer(clock=clock, keep=True))
    with use(registry=captured.registry, tracer=captured.tracer):
        yield captured
