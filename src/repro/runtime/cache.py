"""Bounded LRU cache over deployment evaluations.

Budget sweeps, ε-constraint frontier enumeration, and Shapley sampling
all evaluate overlapping families of deployments against the same
model.  :class:`DeploymentCache` memoizes ``(deployment, weights) ->
breakdown`` with least-recently-used eviction, and
:func:`cached_breakdown`/:func:`cached_utility` give those call sites a
shared per-model cache backed by the vectorized
:class:`~repro.runtime.engine.EvaluationEngine` on misses.

Keys are value-based (``frozenset`` of monitor ids plus the weight
tuple), so identical deployments hit regardless of which code path
asks.  Caches are bounded (default 4096 entries) and keep hit/miss/
eviction counters for observability and tests.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterable

from repro import obs
from repro.core.model import SystemModel
from repro.errors import MetricError
from repro.metrics.utility import UtilityWeights
from repro.runtime.engine import engine_for

__all__ = [
    "DeploymentCache",
    "cache_for",
    "cached_breakdown",
    "cached_utility",
    "evaluation_key",
]

#: Default maximum number of cached evaluations per model.
DEFAULT_CACHE_SIZE = 4096


class DeploymentCache:
    """An LRU-bounded mapping from hashable keys to evaluation results."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise MetricError(f"cache maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: object | None = None) -> object | None:
        """Look up ``key``, refreshing its recency; counts hit or miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            obs.counter("cache.misses").inc()
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        obs.counter("cache.hits").inc()
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the least recently used entry."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        obs.counter("cache.puts").inc()
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.counter("cache.evictions").inc()

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Cached value for ``key``, computing and storing it on a miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }


#: Per-model shared caches; keyed weakly so models can be collected.
_CACHES: "weakref.WeakKeyDictionary[SystemModel, DeploymentCache]" = weakref.WeakKeyDictionary()


def cache_for(model: SystemModel) -> DeploymentCache:
    """The shared :class:`DeploymentCache` for ``model``.

    Keyed by model **identity**, deliberately: :class:`SystemModel`
    defines no ``__eq__``/``__hash__``, so two structurally identical
    models (e.g. an original and its unpickled copy in a worker) get
    *separate* caches and can never serve each other stale evaluations.
    The table holds the model weakly — dropping the last strong
    reference to a model drops its cache with it.  These semantics are
    pinned by ``tests/runtime/test_cache_identity.py``; rebind worker
    results to the parent's model instance (as the sweeps do) rather
    than relying on value equality to share cache entries.
    """
    cache = _CACHES.get(model)
    if cache is None:
        cache = DeploymentCache()
        _CACHES[model] = cache
    return cache


def evaluation_key(deployed: Iterable[str], weights: UtilityWeights) -> Hashable:
    """The value-based cache key of one ``(deployment, weights)`` pair."""
    return (
        frozenset(deployed),
        (weights.coverage, weights.redundancy, weights.richness, weights.redundancy_cap),
    )


def cached_breakdown(
    model: SystemModel,
    deployed: Iterable[str],
    weights: UtilityWeights | None = None,
    *,
    cache: DeploymentCache | None = None,
) -> dict[str, float]:
    """Utility breakdown via the shared cache (engine-evaluated on miss)."""
    weights = weights or UtilityWeights()
    deployed = frozenset(deployed)
    cache = cache if cache is not None else cache_for(model)
    with obs.span("cache.lookup", monitors=len(deployed)) as sp:
        hits_before = cache.hits
        result = cache.get_or_compute(
            evaluation_key(deployed, weights),
            lambda: engine_for(model).breakdown(deployed, weights),
        )
        sp.set(hit=cache.hits > hits_before)
    return dict(result)  # type: ignore[arg-type]


def cached_utility(
    model: SystemModel,
    deployed: Iterable[str],
    weights: UtilityWeights | None = None,
    *,
    cache: DeploymentCache | None = None,
) -> float:
    """Combined utility via the shared cache (engine-evaluated on miss)."""
    return cached_breakdown(model, deployed, weights, cache=cache)["utility"]
