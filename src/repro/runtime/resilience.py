"""Retry policies and structured failure reports for parallel runs.

Long sweeps and campaigns die for boring reasons: one worker segfaults,
one solve hangs, one task trips over a transient error.  This module is
the vocabulary :func:`~repro.runtime.parallel.parallel_map` uses to
survive those faults *visibly*:

* :class:`RetryPolicy` — per-task timeout, bounded retries with
  **deterministic** exponential backoff (no jitter: a retried run is
  reproducible), and the exhaustion behaviour (``raise``/``degrade``/
  ``skip``);
* :class:`TaskFailure` — one task's terminal failure, structured enough
  to be serialized into a CI artifact;
* :class:`MapReport` — everything that went wrong (and was recovered)
  during one map: failures, retries, timeouts, pool degradation.

Nothing here executes tasks; the scheduler lives in
:mod:`repro.runtime.parallel` and the failure modes themselves are
exercised by the deterministic harness in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = [
    "FAILURE_MODES",
    "MapReport",
    "RetryPolicy",
    "TaskFailure",
    "TaskFailureError",
]

#: Accepted values for :attr:`RetryPolicy.on_failure`.
FAILURE_MODES = ("raise", "degrade", "skip")


class TaskFailureError(ReproError):
    """A parallel task failed terminally (retries exhausted).

    Raised when the original task exception cannot be re-raised as-is —
    a per-task timeout, where there *is* no task exception, only an
    overdue future.  Carries the structured :class:`TaskFailure`.
    """

    def __init__(self, failure: "TaskFailure"):
        super().__init__(
            f"task {failure.index} failed after {failure.attempts} attempt(s) "
            f"[{failure.stage}]: {failure.error_type}: {failure.message}"
        )
        self.failure = failure


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a parallel map treats task faults.

    Parameters
    ----------
    timeout:
        Per-task wall-clock budget in seconds, measured from the moment
        the task is handed to a pool worker.  ``None`` disables it.
        Timeouts are a *pool* feature: serial execution cannot preempt
        a running task, so on the serial path (and on the serial
        degrade rerun) the timeout is not enforced.
    max_retries:
        Extra attempts after the first, per task.  A task therefore
        runs at most ``max_retries + 1`` times.
    backoff_base:
        Seconds slept before retry ``k`` (1-based): ``backoff_base *
        2**(k-1)``, capped at ``backoff_cap``.  The schedule is a pure
        function of the attempt number — deterministic by design.
    backoff_cap:
        Upper bound on any single backoff sleep.
    on_failure:
        What happens when a task exhausts its attempts:

        ``"raise"``
            Re-raise the task's own exception (timeouts raise
            :class:`TaskFailureError`).  The default, and the seed
            behaviour callers already rely on.
        ``"degrade"``
            Give the task one final attempt-loop serially in the parent
            process (the pool environment itself may be the problem);
            if that also fails, raise.
        ``"skip"``
            Drop the task's result from the map output and record the
            failure in the :class:`MapReport`.  Callers whose results
            must stay positionally aligned with their inputs must
            consult :attr:`MapReport.skipped`.
    """

    timeout: float | None = None
    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(f"retry timeout must be > 0 seconds, got {self.timeout!r}")
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.backoff_base < 0:
            raise ReproError(f"backoff_base must be >= 0, got {self.backoff_base!r}")
        if self.backoff_cap < 0:
            raise ReproError(f"backoff_cap must be >= 0, got {self.backoff_cap!r}")
        if self.on_failure not in FAILURE_MODES:
            raise ReproError(
                f"on_failure must be one of {FAILURE_MODES}, got {self.on_failure!r}"
            )

    @property
    def attempts(self) -> int:
        """Total attempts a task may consume (first run + retries)."""
        return self.max_retries + 1

    def delay(self, retry_number: int) -> float:
        """Backoff before retry ``retry_number`` (1-based), in seconds."""
        if retry_number < 1:
            raise ReproError(f"retry_number must be >= 1, got {retry_number!r}")
        return min(self.backoff_base * 2 ** (retry_number - 1), self.backoff_cap)


@dataclass(frozen=True, slots=True)
class TaskFailure:
    """One task's terminal failure, ready for a report or a CI artifact."""

    index: int
    stage: str  # "pool" | "serial"
    attempts: int
    error_type: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "stage": self.stage,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
        }


@dataclass(slots=True)
class MapReport:
    """What one :func:`~repro.runtime.parallel.parallel_map` survived.

    Callers pass a fresh instance in and inspect it afterwards; the map
    itself also mirrors the interesting totals into ``repro.obs``
    counters so untraced runs still leave evidence.
    """

    failures: list[TaskFailure] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    degraded: bool = False
    degraded_reason: str | None = None

    @property
    def clean(self) -> bool:
        """Whether the map ran with no fault of any kind."""
        return not (
            self.failures or self.skipped or self.retries or self.timeouts or self.degraded
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the CI failure artifact)."""
        return {
            "failures": [f.to_dict() for f in self.failures],
            "skipped": list(self.skipped),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
        }
