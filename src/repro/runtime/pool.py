"""Persistent worker pools mapping tasks zero-copy over shared memory.

:func:`~repro.runtime.parallel.parallel_map` creates a fresh
``ProcessPoolExecutor`` per call and pickles every task payload whole —
fine for one sweep, ruinous for campaign loops that map thousands of
small tasks against the same model.  This module removes both costs:

* :class:`PersistentPool` owns one executor across many maps (explicit
  lifecycle: context manager, idle reaping, bounded crash-respawn) so
  pool startup is paid once per *loop*, not once per *call*;
* :func:`publish_arrays` copies a set of numpy arrays once into a
  ``multiprocessing.shared_memory`` segment and hands back a tiny
  picklable :class:`SharedArraysHandle`; workers :func:`attach_arrays`
  the segment on first sight (cached per process) and every later task
  reuses the mapping — task payloads carry handles, not data;
* :func:`publish_engine` / :func:`attach_engine` apply that to the
  :class:`~repro.runtime.engine.EvaluationEngine`: the CSR coverage
  relation and field bitsets are built once in the parent, published
  once, and reconstructed zero-copy in each worker.

Segment lifetime is pinned to the publishing pool: handles obtained
from :meth:`PersistentPool.share` stay valid until the pool closes, and
``close`` (or the context manager, even on error) unlinks every
segment, so a finished run leaves nothing in ``/dev/shm``.  The
SHM-SAFE lint rule keeps segment creation inside this module for
exactly that reason.

Attachment sidesteps the known ``resource_tracker`` double-unlink
pitfall: Python < 3.13 registers *attached* segments with the tracker
too (there is no ``track=False`` yet), so a worker that merely mapped
a segment becomes a co-owner in the tracker's eyes — a spawned
attacher's tracker unlinks the segment when the attacher exits, and
with a forked (shared) tracker the duplicate bookkeeping produces
spurious unlink/KeyError noise at shutdown.  :func:`attach_arrays`
therefore opens segments with registration suppressed: only the
publisher is ever tracked, and only the publisher unlinks.

Everything here is observable: ``pool.created`` / ``pool.respawns`` /
``pool.reaps`` counters for executor lifecycle, ``pool.segments`` /
``pool.segment_bytes`` for publications, ``pool.attaches`` /
``pool.detaches`` for mappings, and a ``pool.queue_wait_seconds``
histogram (recorded by the pooled scheduler in
:mod:`repro.runtime.parallel`) for per-task queue latency.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections.abc import Iterator, Mapping
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro import obs
from repro.core.model import SystemModel
from repro.errors import ReproError
from repro.runtime.engine import EvaluationEngine, engine_for

__all__ = [
    "EngineHandle",
    "PersistentPool",
    "PoolError",
    "SharedArrays",
    "SharedArraysHandle",
    "active_pool",
    "attach_arrays",
    "attach_engine",
    "detach_all",
    "publish_arrays",
    "publish_engine",
    "use_pool",
]


class PoolError(ReproError):
    """A persistent pool or shared-memory segment was misused."""


#: Segment-internal alignment for each packed array (cache-line sized).
_ALIGNMENT = 64

#: Names this module gives its segments: a recognizable prefix so tests
#: (and operators) can enumerate leftovers in ``/dev/shm``, the owning
#: pid, a process-local sequence number, and an entropy suffix guarding
#: against collisions with segments a crashed earlier run leaked.
SEGMENT_PREFIX = "repro-shm"

_SEGMENT_COUNTER = itertools.count()


def _segment_name() -> str:
    return (
        f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_COUNTER)}-"
        f"{os.urandom(4).hex()}"
    )


@dataclass(frozen=True)
class SharedArraysHandle:
    """A picklable ticket for one published array set.

    ``spec`` lists ``(array name, dtype string, shape, byte offset)``
    for every packed array; the handle is a few hundred bytes no matter
    how large the arrays are, which is the whole point — task payloads
    ship the handle, never the data.
    """

    segment: str
    spec: tuple[tuple[str, str, tuple[int, ...], int], ...]

    @property
    def nbytes(self) -> int:
        """Total payload bytes addressed by this handle."""
        total = 0
        for _, dtype, shape, _ in self.spec:
            total += int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        return total


class SharedArrays:
    """An owned shared-memory segment holding a packed set of arrays.

    Only the publisher holds one of these; workers see just the
    :attr:`handle`.  Closing (idempotent, and implied by the context
    manager) unlinks the segment — attached readers keep their existing
    mappings alive until they exit, but no new attach can occur and the
    name is gone from ``/dev/shm``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedArraysHandle):
        self._shm = shm
        self.handle = handle
        self._closed = False

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        self._shm.unlink()
        obs.counter("pool.segments_unlinked").inc()


def publish_arrays(arrays: Mapping[str, np.ndarray]) -> SharedArrays:
    """Copy ``arrays`` once into a fresh shared-memory segment.

    Returns the owning :class:`SharedArrays`; pass its ``handle`` to
    workers and keep the owner alive (or registered with a
    :class:`PersistentPool`) until every map over it has finished.
    """
    spec: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    packed: list[tuple[np.ndarray, int]] = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        offset = (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        spec.append((name, contiguous.dtype.str, tuple(contiguous.shape), offset))
        packed.append((contiguous, offset))
        offset += contiguous.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset), name=_segment_name())
    for contiguous, start in packed:
        if contiguous.nbytes == 0:
            continue
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf, offset=start)
        view[...] = contiguous
        del view  # drop the exported buffer so close() can release it
    handle = SharedArraysHandle(segment=shm.name, spec=tuple(spec))
    obs.counter("pool.segments_published").inc()
    obs.counter("pool.segment_bytes").inc(max(1, offset))
    return SharedArrays(shm, handle)


#: Per-process attachment cache: segment name -> (mapping, arrays).
#: Workers are forked per pool and touch many tasks per handle; caching
#: the attach is what makes the payload path zero-copy in practice.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]] = {}


def _noop_register(name: str, rtype: str) -> None:
    """Registration suppressor installed around attach-side opens."""


def _open_untracked(segment: str) -> shared_memory.SharedMemory:
    """Attach ``segment`` without registering it with the tracker.

    Pre-3.13 ``SharedMemory`` has no ``track=False``; it registers even
    pure attachments, making every attacher a co-owner whose tracker
    may unlink the segment on exit (the double-unlink pitfall).
    Swapping the register hook out for the duration of the open is the
    supported-API-free equivalent: attachers leave no tracker state in
    any process, and ownership stays solely with the publisher.
    """
    original = resource_tracker.register
    resource_tracker.register = _noop_register
    try:
        return shared_memory.SharedMemory(name=segment)
    finally:
        resource_tracker.register = original


def attach_arrays(handle: SharedArraysHandle) -> dict[str, np.ndarray]:
    """Read-only views of a published array set (cached per process).

    Attachment never touches the ``resource_tracker`` (see
    :func:`_open_untracked`), so however many workers map a segment,
    the tracker knows exactly one owner — the publisher — and the
    segment is unlinked exactly once.
    """
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached[1]
    try:
        shm = _open_untracked(handle.segment)
    except FileNotFoundError as exc:
        raise PoolError(
            f"shared segment {handle.segment!r} is gone — handles must not "
            f"outlive the pool that published them"
        ) from exc
    views: dict[str, np.ndarray] = {}
    for name, dtype, shape, offset in handle.spec:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False  # shared state must stay immutable
        views[name] = view
    _ATTACHED[handle.segment] = (shm, views)
    obs.counter("pool.attaches").inc()
    return views


def detach_all() -> int:
    """Drop this process's attachment cache; returns segments released.

    Views handed out earlier become invalid.  Mappings whose buffers
    are still exported stay mapped until process exit (the OS reclaims
    them); the cache entry is released either way.
    """
    released = 0
    for segment in list(_ATTACHED):
        shm, _ = _ATTACHED.pop(segment)
        try:
            shm.close()
        except BufferError:
            pass  # live views pin the mapping; the OS frees it at exit
        _ENGINE_CACHE.pop(segment, None)
        obs.counter("pool.detaches").inc()
        released += 1
    return released


# ----------------------------------------------------------------------
# engine publication: the CSR coverage relation, shared once
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EngineHandle:
    """A picklable ticket for a published :class:`EvaluationEngine`.

    Carries the flat-array handle plus the small metadata a worker
    needs to rebuild index maps and ragged per-monitor views; the
    rebuild happens once per worker per handle (see
    :func:`attach_engine`) and reads the arrays zero-copy.
    """

    arrays: SharedArraysHandle
    monitor_ids: tuple[str, ...]
    event_ids: tuple[str, ...]
    n_words: int


def publish_engine(model: SystemModel, pool: "PersistentPool") -> EngineHandle:
    """Publish ``model``'s evaluation engine into ``pool``'s shared memory.

    Builds (or reuses) the per-model engine, copies its CSR arrays and
    field bitsets into one segment owned by ``pool``, and returns the
    handle workers evaluate against.
    """
    engine = engine_for(model)
    handle = pool.share(
        {
            "indptr": engine._indptr,
            "prov_monitor": engine._prov_monitor,
            "prov_weight": engine._prov_weight,
            "prov_miss": engine._prov_miss,
            "prov_fields": engine._prov_fields,
            "alpha": engine._alpha,
            "capturable": engine._capturable,
            "inv_capturable": engine._inv_capturable,
        }
    )
    return EngineHandle(
        arrays=handle,
        monitor_ids=engine.monitor_ids,
        event_ids=engine.event_ids,
        n_words=engine.n_words,
    )


#: Per-process rebuilt engines, keyed by segment (one rebuild per
#: worker per publication, however many tasks map over it).
_ENGINE_CACHE: dict[str, EvaluationEngine] = {}


def attach_engine(handle: EngineHandle) -> EvaluationEngine:
    """The published engine, reconstructed over the shared arrays.

    The heavy state (CSR arrays, bitsets, alpha) is *viewed*, not
    copied; only the index maps and ragged per-monitor working sets are
    rebuilt, and the result is cached per process so repeated tasks pay
    nothing.  The attached engine has no backing
    :class:`~repro.core.model.SystemModel` (``model is None``) — it
    evaluates deployments, it does not answer model queries.
    """
    cached = _ENGINE_CACHE.get(handle.arrays.segment)
    if cached is not None:
        return cached
    arrays = attach_arrays(handle.arrays)
    engine = EvaluationEngine.__new__(EvaluationEngine)
    engine.model = None
    engine.monitor_ids = handle.monitor_ids
    engine.event_ids = handle.event_ids
    engine._midx = {m: i for i, m in enumerate(handle.monitor_ids)}
    engine._eidx = {e: i for i, e in enumerate(handle.event_ids)}
    engine.n_words = handle.n_words
    engine._field_bits = None  # construction-only scaffolding
    engine._indptr = arrays["indptr"]
    engine._prov_monitor = arrays["prov_monitor"]
    engine._prov_weight = arrays["prov_weight"]
    engine._prov_miss = arrays["prov_miss"]
    engine._prov_fields = arrays["prov_fields"]
    engine._alpha = arrays["alpha"]
    engine._capturable = arrays["capturable"]
    engine._inv_capturable = arrays["inv_capturable"]
    engine._build_monitor_views(None)
    _ENGINE_CACHE[handle.arrays.segment] = engine
    obs.counter("pool.engine_attaches").inc()
    return engine


# ----------------------------------------------------------------------
# the persistent pool
# ----------------------------------------------------------------------

def _pool_workers(workers: int | None) -> int:
    """Explicit count, else ``REPRO_WORKERS``, else 1 (mirrors parallel)."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return 1


class PersistentPool:
    """One process pool reused across many maps, with owned segments.

    Parameters
    ----------
    workers:
        Worker-process count (defaults like
        :func:`~repro.runtime.parallel.resolve_workers`).
    idle_timeout:
        Seconds of disuse after which the executor is reaped; the next
        map lazily recreates it.  ``None`` disables reaping.
    max_respawns:
        How many crashed executors :meth:`respawn` will replace before
        refusing (the caller then degrades to serial).  Respawn uses
        the same transport-error classification as
        :func:`~repro.runtime.parallel.parallel_map` — a dead worker is
        pool plumbing, not a task fault.

    The executor is created lazily on first use (so a pool constructed
    but never mapped costs nothing) and torn down by :meth:`close` or
    the context manager, which also unlinks every segment published
    through :meth:`share` — crash or not, exiting the ``with`` block
    leaves zero segments behind.

    Lifecycle transitions (create/reap/respawn/close/share) are guarded
    by a reentrant lock, so one pool can back many service worker
    threads: concurrent first-use races create exactly one executor,
    and a close never interleaves with a respawn.  The lock covers
    lifecycle only — submitting work to the returned executor is
    already thread-safe by ``concurrent.futures`` contract.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        idle_timeout: float | None = None,
        max_respawns: int = 2,
    ):
        self.workers = _pool_workers(workers)
        self.idle_timeout = idle_timeout
        self.max_respawns = max_respawns
        self._executor: ProcessPoolExecutor | None = None
        self._segments: list[SharedArrays] = []
        self._respawns = 0
        self._last_used: float | None = None
        self._closed = False
        #: Reentrant: executor() runs reap_if_idle() under the same lock.
        self._lifecycle = threading.RLock()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def respawns(self) -> int:
        """How many crashed executors this pool has replaced."""
        return self._respawns

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, creating (or re-creating) it on demand."""
        with self._lifecycle:
            if self._closed:
                raise PoolError("the pool is closed")
            self.reap_if_idle()
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                obs.counter("pool.created").inc()
            self._last_used = time.monotonic()
            return self._executor

    def reap_if_idle(self) -> bool:
        """Shut the executor down if it has sat idle past the timeout."""
        with self._lifecycle:
            if (
                self._executor is not None
                and self.idle_timeout is not None
                and self._last_used is not None
                and time.monotonic() - self._last_used > self.idle_timeout
            ):
                self._teardown(kill=False)
                obs.counter("pool.reaps").inc()
                return True
            return False

    def respawn(self, reason: str) -> bool:
        """Replace a broken executor; ``False`` once the budget is spent.

        The old executor's workers are killed outright (a broken or
        hung pool cannot be drained), the next :meth:`executor` call
        forks a fresh one, and the attempt is counted.  Exhausting
        ``max_respawns`` returns ``False`` so the caller can fall back
        to the serial degrade path instead of thrashing.
        """
        with self._lifecycle:
            self._teardown(kill=True)
            if self._respawns >= self.max_respawns:
                obs.counter("pool.respawns_exhausted").inc()
                return False
            self._respawns += 1
            obs.counter("pool.respawns").inc()
            with obs.span("pool.respawn", reason=reason):
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                obs.counter("pool.created").inc()
            self._last_used = time.monotonic()
            return True

    def close(self) -> None:
        """Tear down the executor and unlink every owned segment."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            self._teardown(kill=False)
            segments = list(self._segments)
            self._segments.clear()
        for segment in segments:
            segment.close()

    def _teardown(self, *, kill: bool) -> None:
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = dict(getattr(executor, "_processes", None) or {})
        executor.shutdown(wait=not kill)
        if kill:
            for process in processes.values():
                process.kill()

    # -- publication -------------------------------------------------------

    def share(self, arrays: Mapping[str, np.ndarray]) -> SharedArraysHandle:
        """Publish ``arrays`` with lifetime pinned to this pool.

        The returned handle stays valid until :meth:`close`; this is
        the pinning discipline the SHM-SAFE rule enforces — handles
        crossing a ``parallel_map`` boundary must be owned by a pool
        whose lifetime spans the map.
        """
        with self._lifecycle:
            if self._closed:
                raise PoolError("the pool is closed")
            published = publish_arrays(arrays)
            self._segments.append(published)
            return published.handle


#: Ambient pool consulted by :func:`~repro.runtime.parallel.parallel_map`
#: when no explicit ``pool`` argument is given.
_ACTIVE_POOL: PersistentPool | None = None


def active_pool() -> PersistentPool | None:
    """The ambient persistent pool, if one is installed."""
    return _ACTIVE_POOL


@contextmanager
def use_pool(pool: PersistentPool) -> Iterator[PersistentPool]:
    """Route every ``parallel_map`` in this block through ``pool``.

    Installation only — the pool's lifecycle stays with the caller.
    Stack it with the pool's own context manager
    (``with PersistentPool(4) as pool, use_pool(pool): ...``) so the
    executor and every published segment are released on exit.
    """
    global _ACTIVE_POOL
    previous = _ACTIVE_POOL
    _ACTIVE_POOL = pool
    try:
        yield pool
    finally:
        _ACTIVE_POOL = previous
