"""Deterministic fault injection for the fault-tolerance suite.

Recovery code that is never exercised is recovery code that does not
work.  This module scripts faults — task exceptions, hangs, worker
death, solver failures/infeasibility — so ``tests/faults`` can drive
every recovery path in :func:`~repro.runtime.parallel.parallel_map` and
:func:`~repro.solver.fallback.solve_with_fallback` deterministically:

* A :class:`FaultPlan` maps *site* strings (``"task[3]"``,
  ``"solver.scipy"``) to :class:`FaultSpec` entries.  Plans are plain
  picklable values, so they ride into pool workers inside a
  :class:`FaultyJob` wrapper.
* Attempt counting is **cross-process**: each execution of a site
  claims the next attempt number by atomically creating a marker file
  under the plan's ``state_dir`` (``O_CREAT | O_EXCL``), so "fail the
  first *n* attempts, then succeed" means the same thing whether the
  attempts land in one process or four.  Scheduling cannot change which
  attempt fails — only *when* it runs.
* :func:`seeded_plan` derives which sites fault from a seed alone
  (``random.Random(seed)``), never from timing, so a failing campaign
  replays exactly.

Solver-side injection is ambient: :func:`inject` installs a plan for
the current process and :func:`poke` (called by the solver fallback
chain before dispatching to a backend) consults it.  Task-side
injection is explicit via :class:`FaultyJob`, which composes with any
picklable job function.

Injected faults raise :class:`InjectedFault` — deliberately **not** a
:class:`~repro.errors.ReproError`, so recovery code that special-cases
the library's own error hierarchy cannot accidentally treat an injected
infrastructure fault as a semantic verdict.
"""

from __future__ import annotations

import os
import random
import re
import time
from collections.abc import Callable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyJob",
    "InjectedFault",
    "active_plan",
    "inject",
    "poke",
    "seeded_plan",
    "task_site",
]

#: Supported fault kinds.
#:
#: ``"error"``
#:     Raise :class:`InjectedFault`.
#: ``"hang"``
#:     Sleep ``seconds`` (simulating a stuck task), then proceed
#:     normally — the task still produces its real result, which is
#:     what lets timeout+retry runs stay bit-identical to the oracle.
#: ``"exit"``
#:     Kill the executing process with ``os._exit(1)``.  Inside a pool
#:     worker this breaks the pool (``BrokenProcessPool``); never
#:     triggered in the parent process (see :meth:`FaultPlan.fire`).
#: ``"infeasible"``
#:     Report the site as infeasible instead of raising; the solver
#:     fallback chain turns this into an INFEASIBLE verdict (which must
#:     *stop* the chain, not fall through to a heuristic).
FAULT_KINDS = ("error", "hang", "exit", "infeasible")


class InjectedFault(Exception):
    """An injected infrastructure fault (intentionally not a ReproError)."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One site's scripted fault.

    ``times`` is the number of *initial attempts* that fault; attempt
    ``times + 1`` onward proceeds normally.  ``times=-1`` faults every
    attempt.  ``seconds`` only applies to ``kind="hang"``.
    """

    kind: str = "error"
    times: int = 1
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.times < -1:
            raise ValueError(f"times must be >= -1, got {self.times!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds!r}")

    def applies_to(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) faults."""
        return self.times == -1 or attempt <= self.times


def task_site(item: object) -> str:
    """The canonical site string for a parallel task item."""
    return f"task[{item!r}]"


_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(site: str) -> str:
    return _SLUG_RE.sub("_", site)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A picklable script of faults, with cross-process attempt state.

    ``state_dir`` must exist and be shared by every process running
    under the plan (workers inherit it through pickling).  A fresh
    directory per test gives a fresh attempt history.
    """

    specs: Mapping[str, FaultSpec]
    state_dir: str

    @classmethod
    def of(cls, state_dir: str | Path, specs: Mapping[str, FaultSpec]) -> "FaultPlan":
        state_dir = Path(state_dir)
        if not state_dir.is_dir():
            raise ValueError(f"fault-plan state_dir must be an existing directory: {state_dir}")
        # Record the constructing (parent) process so "exit" faults can
        # refuse to kill it — only pool workers may die.
        marker = state_dir / "_parent.pid"
        if not marker.exists():
            marker.write_text(str(os.getpid()), encoding="ascii")
        return cls(specs=dict(specs), state_dir=str(state_dir))

    def next_attempt(self, site: str) -> int:
        """Claim and return this site's next attempt number (1-based).

        Atomic across processes: attempt ``k`` is owned by whichever
        process first creates the ``<site>.<k>`` marker file.
        """
        slug = _slug(site)
        attempt = 1
        while True:
            marker = os.path.join(self.state_dir, f"{slug}.{attempt}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt

    def attempts_seen(self, site: str) -> int:
        """How many attempts this site has consumed so far."""
        slug = _slug(site)
        pattern = re.compile(re.escape(slug) + r"\.(\d+)$")
        return sum(1 for name in os.listdir(self.state_dir) if pattern.match(name))

    def fire(self, site: str) -> str | None:
        """Run the site's scripted fault for its next attempt, if any.

        Returns ``"infeasible"`` for an infeasibility fault, ``None``
        when the attempt proceeds normally (including after a ``hang``
        fault finished sleeping); raises :class:`InjectedFault` for
        ``"error"`` faults and kills the process for ``"exit"`` faults.
        An ``"exit"`` fault fires only in a process other than the one
        that built the plan (pool workers); in the parent it raises
        :class:`InjectedFault` instead — killing the parent would take
        the test runner down with it.
        """
        spec = self.specs.get(site)
        if spec is None:
            return None
        attempt = self.next_attempt(site)
        if not spec.applies_to(attempt):
            return None
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return None
        if spec.kind == "infeasible":
            return "infeasible"
        if spec.kind == "exit":
            if os.getpid() == self._parent_pid():
                raise InjectedFault(
                    f"{site}: exit fault refused in the parent process "
                    f"(attempt {attempt}): {spec.message}"
                )
            os._exit(1)
        raise InjectedFault(f"{site} (attempt {attempt}): {spec.message}")

    def _parent_pid(self) -> int:
        """The PID recorded at plan construction (guard for "exit")."""
        marker = os.path.join(self.state_dir, "_parent.pid")
        try:
            with open(marker, encoding="ascii") as fh:
                return int(fh.read().strip())
        except (FileNotFoundError, ValueError):
            return os.getpid()  # no record: refuse to exit anywhere


def seeded_plan(
    state_dir: str | Path,
    seed: int,
    sites: Sequence[str],
    *,
    fault_rate: float = 0.5,
    spec: FaultSpec | None = None,
) -> FaultPlan:
    """A plan whose faulted sites are a pure function of ``seed``.

    Each site independently faults with probability ``fault_rate``
    under ``random.Random(seed)``, consumed in ``sites`` order — the
    same seed and site list always produce the same plan, so a failing
    run replays exactly.
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must lie in [0, 1], got {fault_rate!r}")
    spec = spec if spec is not None else FaultSpec()
    rng = random.Random(seed)
    chosen = {site: spec for site in sites if rng.random() < fault_rate}
    return FaultPlan.of(state_dir, chosen)


@dataclass(frozen=True, slots=True)
class FaultyJob:
    """A picklable job wrapper that fires the plan's task faults.

    Wraps any picklable ``fn(item)``; before each execution it fires
    the fault scripted for ``task_site(item)``.  Because attempt state
    lives in the plan's ``state_dir``, retried attempts see increasing
    attempt numbers no matter which process runs them.
    """

    fn: Callable
    plan: FaultPlan

    def __call__(self, item: object) -> object:
        self.plan.fire(task_site(item))
        return self.fn(item)


#: Ambient plan for in-process injection sites (the solver chain).
_ACTIVE_PLAN: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The ambient fault plan, if one is installed."""
    return _ACTIVE_PLAN


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan for this process."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def poke(site: str) -> str | None:
    """Fire the ambient plan's fault at ``site`` (no-op without a plan).

    Production code calls this at its injection points; with no plan
    installed it is a dictionary miss away from free.
    """
    if _ACTIVE_PLAN is None:
        return None
    return _ACTIVE_PLAN.fire(site)
