"""Process-pool parallel map with deterministic seeding and fault tolerance.

Budget sweeps, scenario solves, and simulation campaigns are
embarrassingly parallel: independent pure jobs over a list of inputs.
:func:`parallel_map` runs such jobs across a ``ProcessPoolExecutor``
while keeping four guarantees the experiment suite depends on:

* **order preservation** — results come back in input order, so a
  parallel run is positionally identical to a serial one;
* **determinism** — randomized jobs take their seeds from
  :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), which
  derives one independent child stream per job from the caller's seed,
  independent of how jobs land on workers;
* **graceful serial fallback** — if the pool cannot be used (no OS
  support, unpicklable job, broken worker), the same jobs run serially
  in-process instead of failing;
* **visible fault handling** — per-task timeouts, bounded retries with
  deterministic exponential backoff, and ``BrokenProcessPool``
  recovery, all governed by a
  :class:`~repro.runtime.resilience.RetryPolicy` and recorded into a
  structured :class:`~repro.runtime.resilience.MapReport` plus
  ``parallel.*`` obs counters — never a silent ``except Exception``.

Worker count resolution: an explicit ``workers`` argument wins, then
the ``REPRO_WORKERS`` environment variable, then serial (1).  Jobs must
be module-level callables with picklable arguments to actually run in
the pool; anything else falls back to serial.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

import numpy as np

from repro import obs
from repro.runtime.pool import PersistentPool, active_pool
from repro.runtime.resilience import MapReport, RetryPolicy, TaskFailure, TaskFailureError

__all__ = [
    "WORKERS_ENV",
    "parallel_map",
    "resolve_workers",
    "spawn_generators",
    "spawn_seeds",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Placeholder occupying the result slot of a task dropped by
#: ``on_failure="skip"``; filtered out before results are returned.
_SKIPPED = object()

#: Default policy: no timeout, no retries, raise on task failure —
#: the seed semantics, now with reporting.
_DEFAULT_POLICY = RetryPolicy()


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: argument, else ``REPRO_WORKERS``, else 1."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return 1


def spawn_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences derived from ``seed``.

    Children depend only on ``(seed, position)`` — never on worker
    scheduling — so seeded work partitioned over any number of workers
    reproduces the serial stream exactly.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count!r}")
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_generators(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


#: Serializes in-process captured executions and their graft-back.
#: ``obs.capture`` swaps the *process-global* ambient instruments, so
#: two threads interleaving enter/exit (the solve service maps from
#: ``asyncio.to_thread`` workers) would violate the LIFO restore and
#: leave the ambient registry pointing at a dead per-task capture.
#: The lock enforces strict nesting; increments other threads make
#: while a capture is ambient land in that capture's registry and are
#: folded back into the parent with its snapshot, so totals survive.
#: Reentrant because observed jobs may themselves run nested maps.
_OBSERVED_LOCK = threading.RLock()


class _ObservedJob:
    """One job run under its own capture, shipping observability home.

    Worker processes cannot write to the parent's ambient instruments,
    so when the caller is tracing each job runs inside a fresh
    :func:`repro.obs.capture` and returns ``(result, spans, metrics)``;
    the parent grafts the spans into its trace as a ``task-<i>`` row
    and folds the metrics snapshot into its registry.  The wrapper is a
    module-level class so instances pickle into the pool whenever the
    wrapped ``fn`` does.  The capture inherits the ambient clock of the
    *executing* process: in-process parity runs keep an injected test
    clock; pool workers read their own system clock (the parent rebases
    those foreign timestamps on attach).  In-process runs serialize on
    :data:`_OBSERVED_LOCK`; in a pool worker the lock is fresh per
    process and never contended.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]) -> None:
        self.fn = fn

    def __call__(self, item: _T) -> tuple[_R, list[dict], dict]:
        with _OBSERVED_LOCK:
            with obs.capture(clock=obs.tracer().clock) as cap:
                result = self.fn(item)
        return result, cap.tracer.export_spans(), cap.registry.snapshot()


class _QueueTimedJob:
    """A submission stamped with its enqueue time.

    Workers return ``(queue_wait, result)`` where the wait is measured
    on the worker against the submission stamp — valid cross-process on
    Linux because ``time.monotonic`` reads the system-wide
    ``CLOCK_MONOTONIC``.  Only the pooled scheduler wraps with this, so
    the ``pool.queue_wait_seconds`` histogram reflects real queueing on
    a shared executor, not per-call pools that never queue.
    """

    __slots__ = ("fn", "submitted")

    def __init__(self, fn: Callable, submitted: float) -> None:
        self.fn = fn
        self.submitted = submitted

    def __call__(self, item: object) -> tuple[float, object]:
        wait = max(0.0, time.monotonic() - self.submitted)
        return wait, self.fn(item)


def _is_transport_error(exc: BaseException) -> bool:
    """Whether an exception means the *pool plumbing* failed, not the task.

    Unpicklable jobs/arguments/results surface as pickling errors on the
    future; those warrant a serial degrade (the task itself may be
    perfectly healthy in-process), not a retry of the same doomed
    submission.
    """
    if isinstance(exc, (pickle.PicklingError, BrokenProcessPool)):
        return True
    text = f"{type(exc).__name__}: {exc}"
    return "pickle" in text.lower()


def _record_failure(
    report: MapReport, index: int, stage: str, attempts: int, exc: BaseException
) -> TaskFailure:
    failure = TaskFailure(
        index=index,
        stage=stage,
        attempts=attempts,
        error_type=type(exc).__name__,
        message=str(exc),
    )
    report.failures.append(failure)
    obs.counter("parallel.task_failures").inc()
    return failure


def _run_one_serial(
    job: Callable,
    item: object,
    index: int,
    policy: RetryPolicy,
    report: MapReport,
    *,
    stage: str = "serial",
    skip_allowed: bool = True,
) -> object:
    """One task's attempt loop in the current process (no timeout).

    Returns the result, the ``_SKIPPED`` sentinel, or raises the task's
    own exception once attempts are exhausted.
    """
    for attempt in range(1, policy.attempts + 1):
        try:
            return job(item)
        except Exception as exc:
            if attempt < policy.attempts:
                report.retries += 1
                obs.counter("parallel.retries").inc()
                delay = policy.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            _record_failure(report, index, stage, attempt, exc)
            if policy.on_failure == "skip" and skip_allowed:
                report.skipped.append(index)
                obs.counter("parallel.tasks_skipped").inc()
                return _SKIPPED
            raise
    raise AssertionError("unreachable")  # pragma: no cover


def _run_serial(
    job: Callable,
    materialized: Sequence,
    policy: RetryPolicy,
    report: MapReport,
    *,
    stage: str = "serial",
) -> list:
    return [
        _run_one_serial(job, item, index, policy, report, stage=stage)
        for index, item in enumerate(materialized)
    ]


def _degrade_to_serial(
    job: Callable,
    materialized: Sequence,
    policy: RetryPolicy,
    report: MapReport,
    reason: str,
) -> list:
    """Re-run the whole map serially after the pool itself failed.

    Jobs are pure with respect to the caller's observable state (the
    :func:`parallel_map` contract), so the serial rerun yields exactly
    what the parallel run would have — and any error genuinely raised
    by the job surfaces from here with its original type.
    """
    report.degraded = True
    report.degraded_reason = reason
    obs.counter("parallel.pool_failures").inc()
    obs.counter("parallel.degraded_maps").inc()
    return _run_serial(job, materialized, policy, report, stage="serial")


class _PoolAbandoned(Exception):
    """Internal: the pool path gave up; degrade the whole map to serial."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _run_pool(
    job: Callable,
    materialized: Sequence,
    count: int,
    policy: RetryPolicy,
    report: MapReport,
    pool: PersistentPool | None = None,
) -> list:
    """Windowed pool scheduler with per-task deadlines and retries.

    At most ``count`` tasks are in flight at once, so a task's deadline
    (submission time + ``policy.timeout``) approximates its running
    time — queued-but-not-started tasks cannot time out spuriously.
    A timed-out future that cannot be cancelled is *abandoned* (its
    worker keeps running; the slot is effectively narrowed until it
    finishes) and the task is retried or failed like any other fault.
    Raises :class:`_PoolAbandoned` when the pool plumbing breaks.

    With a :class:`~repro.runtime.pool.PersistentPool`, the pool's
    executor is borrowed instead of created (and *not* shut down at the
    end), submissions are stamped for the queue-wait histogram, and a
    transport error triggers :meth:`~repro.runtime.pool.PersistentPool.
    respawn` with every in-flight task re-enqueued — the map survives a
    killed worker on a fresh executor, falling back to the serial
    degrade only once the respawn budget is spent.  Re-enqueued jobs
    are pure (the :func:`parallel_map` contract), so recovery cannot
    change results.
    """
    total = len(materialized)
    results: list = [None] * total
    outstanding: list[tuple[int, int]] = [(i, 1) for i in range(total)]  # (index, attempt)
    outstanding.reverse()  # pop() yields input order
    degrade_serially: list[int] = []
    pending: dict[Future, tuple[int, int, float | None]] = {}
    abandoned: list[Future] = []

    def handle_task_fault(index: int, attempt: int, exc: BaseException) -> None:
        """Retry, skip, queue for serial degrade, or raise — per policy."""
        if attempt < policy.attempts:
            report.retries += 1
            obs.counter("parallel.retries").inc()
            delay = policy.delay(attempt)
            if delay > 0:
                time.sleep(delay)
            outstanding.append((index, attempt + 1))
            return
        if policy.on_failure == "degrade":
            _record_failure(report, index, "pool", attempt, exc)
            degrade_serially.append(index)
            return
        if policy.on_failure == "skip":
            _record_failure(report, index, "pool", attempt, exc)
            report.skipped.append(index)
            obs.counter("parallel.tasks_skipped").inc()
            results[index] = _SKIPPED
            return
        failure = _record_failure(report, index, "pool", attempt, exc)
        if isinstance(exc, TimeoutError):
            raise TaskFailureError(failure) from exc
        raise exc

    def requeue_in_flight(extra: tuple[int, int]) -> None:
        """Push every in-flight task back, descending so pop() ascends."""
        in_flight = [(i, a) for (i, a, _) in pending.values()]
        in_flight.append(extra)
        for future in pending:
            # Swallow the eventual (broken-pool) outcome of futures we
            # are walking away from, as the abandon path does.
            future.add_done_callback(lambda f: None if f.cancelled() else f.exception())
        pending.clear()
        outstanding.extend(sorted(in_flight, key=lambda entry: -entry[0]))

    if pool is None:
        try:
            executor = ProcessPoolExecutor(max_workers=min(count, total))
        except Exception as exc:
            raise _PoolAbandoned(f"pool creation failed: {type(exc).__name__}: {exc}") from exc
    else:
        count = min(count, pool.workers)
        try:
            executor = pool.executor()
        except Exception as exc:
            raise _PoolAbandoned(
                f"persistent pool unavailable: {type(exc).__name__}: {exc}"
            ) from exc
    try:
        while outstanding or pending:
            while outstanding and len(pending) < count:
                index, attempt = outstanding.pop()
                payload = (
                    job if pool is None else _QueueTimedJob(job, time.monotonic())
                )
                try:
                    future = executor.submit(payload, materialized[index])
                except Exception as exc:
                    raise _PoolAbandoned(
                        f"submission failed: {type(exc).__name__}: {exc}"
                    ) from exc
                deadline = (
                    None if policy.timeout is None else time.monotonic() + policy.timeout
                )
                pending[future] = (index, attempt, deadline)

            deadlines = [d for (_, _, d) in pending.values() if d is not None]
            wait_for = None
            if deadlines:
                wait_for = max(0.0, min(deadlines) - time.monotonic())
            completed, _ = wait(set(pending), timeout=wait_for, return_when=FIRST_COMPLETED)

            for future in completed:
                entry = pending.pop(future, None)
                if entry is None:
                    continue  # re-enqueued wholesale after a respawn
                index, attempt, _ = entry
                try:
                    value = future.result()
                except Exception as exc:
                    if _is_transport_error(exc):
                        if pool is not None and pool.respawn(
                            f"{type(exc).__name__}: {exc}"
                        ):
                            requeue_in_flight((index, attempt))
                            executor = pool.executor()
                            break  # siblings in `completed` were re-enqueued
                        raise _PoolAbandoned(f"{type(exc).__name__}: {exc}") from exc
                    handle_task_fault(index, attempt, exc)
                else:
                    if pool is not None:
                        queue_wait, value = value
                        obs.histogram("pool.queue_wait_seconds").observe(queue_wait)
                    results[index] = value

            now = time.monotonic()
            for future, (index, attempt, deadline) in list(pending.items()):
                if deadline is None or now < deadline:
                    continue
                pending.pop(future)
                if not future.cancel():  # a running task cannot be cancelled
                    # Retrieve the eventual outcome so an abandoned future
                    # never emits an "exception was never retrieved" warning.
                    future.add_done_callback(
                        lambda f: None if f.cancelled() else f.exception()
                    )
                    abandoned.append(future)
                report.timeouts += 1
                obs.counter("parallel.timeouts").inc()
                handle_task_fault(
                    index,
                    attempt,
                    TimeoutError(
                        f"task {index} exceeded the per-task timeout of "
                        f"{policy.timeout:g}s (attempt {attempt})"
                    ),
                )
    finally:
        if pool is None:
            # No cancel_futures here: the windowed scheduler keeps at most one
            # queued-but-unstarted item, so cancellation buys nothing — and
            # shutdown(cancel_futures=True) can deadlock interpreter exit when
            # a submission fails to pickle (the executor manager rebinds its
            # pending-work dict while the queue feeder still pops failures
            # from the old one, leaving a phantom item the manager waits on
            # forever).
            workers = dict(getattr(executor, "_processes", None) or {})
            executor.shutdown(wait=False)
            if any(not future.done() for future in abandoned):
                # A hung task may never return; don't let its worker block
                # interpreter shutdown. The pool is already abandoned, so
                # tearing down its processes is safe.
                for process in workers.values():
                    process.kill()
        elif any(not future.done() for future in abandoned):
            # A persistent pool outlives the map, but a hung worker would
            # narrow every later map; replace the executor (killing its
            # processes) rather than shutting the pool down.
            pool.respawn("abandoned timed-out task")

    for index in degrade_serially:
        results[index] = _run_one_serial(
            job, materialized[index], index, policy, report, stage="serial"
        )
    return results


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
    pool: PersistentPool | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, in-process or across a process pool.

    ``fn`` must be pure with respect to the caller's observable state:
    on any pool failure (fork unavailable, unpicklable payloads, a
    worker dying) the whole map is re-run serially, so side effects
    could be applied twice.  Results always come back in input order;
    with ``policy.on_failure == "skip"``, failed tasks' results are
    omitted (consult ``report.skipped`` for their indices).

    ``policy`` governs per-task timeouts, retries with deterministic
    exponential backoff, and exhaustion behaviour; the default retries
    nothing and re-raises task errors unchanged.  ``report`` (a fresh
    :class:`~repro.runtime.resilience.MapReport`) receives the
    structured account of every fault and recovery; the same totals
    land on ``parallel.*`` obs counters either way.  ``chunksize`` is
    accepted for backward compatibility and ignored (tasks are
    scheduled individually so deadlines and retries stay per-task).

    When the ambient tracer is retaining spans, every job — pooled or
    serial, so the trace shape is the same either way — is wrapped in
    :class:`_ObservedJob`; its spans land on per-task rows of the
    parent trace and its metrics merge into the parent registry, both
    in input order.

    ``pool`` (or the ambient pool installed with
    :func:`~repro.runtime.pool.use_pool`) reuses one persistent
    executor across maps instead of spinning a fresh pool per call;
    see :mod:`repro.runtime.pool`.  With a pool and no explicit
    ``workers``, the pool's own worker count applies.
    """
    del chunksize  # individually scheduled; see docstring
    materialized: Sequence[_T] = list(items)
    pool = pool if pool is not None else active_pool()
    if pool is not None and pool.closed:
        pool = None
    if workers is None and pool is not None:
        count = pool.workers
    else:
        count = resolve_workers(workers)
    policy = policy if policy is not None else _DEFAULT_POLICY
    report = report if report is not None else MapReport()
    observed = obs.tracer().keep
    job: Callable = _ObservedJob(fn) if observed else fn
    with obs.span("parallel.map", items=len(materialized), workers=count) as sp:
        obs.counter("parallel.maps").inc()
        obs.counter("parallel.tasks").inc(len(materialized))
        if count <= 1 or len(materialized) <= 1:
            raw = _run_serial(job, materialized, policy, report)
        else:
            try:
                raw = _run_pool(job, materialized, count, policy, report, pool)
            except _PoolAbandoned as abandoned:
                # Pool machinery failed (creation, pickling transport, a
                # dead worker): the jobs themselves are deterministic,
                # so the serial rerun yields what the pool would have.
                # Task errors raised per policy propagate unchanged.
                raw = _degrade_to_serial(
                    job, materialized, policy, report, abandoned.reason
                )
        if report.degraded:
            sp.set(degraded=True)
        if report.failures:
            sp.set(failures=len(report.failures))
        if not observed:
            return [r for r in raw if r is not _SKIPPED]
        # Graft each task's observability while the parallel.map span
        # is still open, so task rows nest under it in the trace.  The
        # lock keeps the ambient read coherent with concurrent
        # in-process captures on other threads.
        results: list[_R] = []
        with _OBSERVED_LOCK:
            tracer = obs.tracer()
            registry = obs.registry()
            for index, entry in enumerate(raw):
                if entry is _SKIPPED:
                    continue
                result, spans, snapshot = entry
                tracer.attach(spans, tid=f"task-{index}")
                registry.merge(snapshot)
                results.append(result)
    return results
