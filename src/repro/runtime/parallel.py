"""Process-pool parallel map with deterministic seeding.

Budget sweeps, scenario solves, and simulation campaigns are
embarrassingly parallel: independent pure jobs over a list of inputs.
:func:`parallel_map` runs such jobs across a ``ProcessPoolExecutor``
while keeping three guarantees the experiment suite depends on:

* **order preservation** — results come back in input order, so a
  parallel run is positionally identical to a serial one;
* **determinism** — randomized jobs take their seeds from
  :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), which
  derives one independent child stream per job from the caller's seed,
  independent of how jobs land on workers;
* **graceful serial fallback** — if the pool cannot be used (no OS
  support, unpicklable job, broken worker), the same jobs run serially
  in-process instead of failing.

Worker count resolution: an explicit ``workers`` argument wins, then
the ``REPRO_WORKERS`` environment variable, then serial (1).  Jobs must
be module-level callables with picklable arguments to actually run in
the pool; anything else falls back to serial.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

import numpy as np

from repro import obs

__all__ = ["WORKERS_ENV", "parallel_map", "resolve_workers", "spawn_generators", "spawn_seeds"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: argument, else ``REPRO_WORKERS``, else 1."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return 1


def spawn_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences derived from ``seed``.

    Children depend only on ``(seed, position)`` — never on worker
    scheduling — so seeded work partitioned over any number of workers
    reproduces the serial stream exactly.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count!r}")
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_generators(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


class _ObservedJob:
    """One job run under its own capture, shipping observability home.

    Worker processes cannot write to the parent's ambient instruments,
    so when the caller is tracing each job runs inside a fresh
    :func:`repro.obs.capture` and returns ``(result, spans, metrics)``;
    the parent grafts the spans into its trace as a ``task-<i>`` row
    and folds the metrics snapshot into its registry.  The wrapper is a
    module-level class so instances pickle into the pool whenever the
    wrapped ``fn`` does.  The capture inherits the ambient clock of the
    *executing* process: in-process parity runs keep an injected test
    clock; pool workers read their own system clock (the parent rebases
    those foreign timestamps on attach).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]) -> None:
        self.fn = fn

    def __call__(self, item: _T) -> tuple[_R, list[dict], dict]:
        with obs.capture(clock=obs.tracer().clock) as cap:
            result = self.fn(item)
        return result, cap.tracer.export_spans(), cap.registry.snapshot()


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
) -> list[_R]:
    """Map ``fn`` over ``items``, in-process or across a process pool.

    ``fn`` must be pure with respect to the caller's observable state:
    on any pool failure (fork unavailable, unpicklable payloads, a
    worker dying) the whole map is re-run serially, so side effects
    could be applied twice.  Results always come back in input order.

    When the ambient tracer is retaining spans, every job — pooled or
    serial, so the trace shape is the same either way — is wrapped in
    :class:`_ObservedJob`; its spans land on per-task rows of the
    parent trace and its metrics merge into the parent registry, both
    in input order.
    """
    materialized: Sequence[_T] = list(items)
    count = resolve_workers(workers)
    observed = obs.tracer().keep
    job: Callable = _ObservedJob(fn) if observed else fn
    with obs.span("parallel.map", items=len(materialized), workers=count):
        obs.counter("parallel.maps").inc()
        obs.counter("parallel.tasks").inc(len(materialized))
        if count <= 1 or len(materialized) <= 1:
            raw = [job(item) for item in materialized]
        else:
            try:
                with ProcessPoolExecutor(max_workers=min(count, len(materialized))) as pool:
                    raw = list(pool.map(job, materialized, chunksize=max(1, chunksize)))
            except Exception:
                # Pool setup or transport failed (pickling, OS limits,
                # a dead worker).  The jobs themselves are
                # deterministic, so rerunning serially yields the
                # result the parallel path would have — and any error
                # genuinely raised by ``fn`` surfaces unchanged here.
                raw = [job(item) for item in materialized]
        if not observed:
            return raw
        # Graft each task's observability while the parallel.map span
        # is still open, so task rows nest under it in the trace.
        tracer = obs.tracer()
        registry = obs.registry()
        results: list[_R] = []
        for index, (result, spans, snapshot) in enumerate(raw):
            tracer.attach(spans, tid=f"task-{index}")
            registry.merge(snapshot)
            results.append(result)
    return results
