"""Incremental, array-backed evaluation of deployment metrics.

The reference metrics in :mod:`repro.metrics` walk Python dicts for
every evaluation — clear, but linear in model size *per call*, which is
exactly the wrong constant for optimizers that probe thousands of
candidate deployments.  :class:`EvaluationEngine` precomputes the
coverage relation once as flat numpy arrays:

* a CSR layout over events: for every event, the providing monitors
  with their evidence weights, miss probabilities (``1 - weight *
  quality``), and *field bitsets* — each provider's contributed data
  fields encoded as bits within the event's capturable-field universe
  (``uint64`` words, multi-word when an event has more than 64 fields);
* an aggregation vector ``alpha`` folding the attack structure flat:
  ``alpha[e]`` is the total weight event ``e`` carries in any overall
  metric, so ``overall_coverage = alpha @ cov`` (and likewise for
  redundancy, richness, and confidence).

Full evaluation (:meth:`EvaluationEngine.components`) is then a handful
of ``reduceat`` reductions, and :class:`DeploymentCursor` supports
*delta evaluation*: adding a monitor is a vectorized ``max``/``+1``/
``|=`` over just the events that monitor can evidence, and a candidate
addition can be *peeked* without committing — the operation greedy
probes thousands of times.  Removal recomputes only the affected
events' CSR segments.

The engine must agree with the reference metrics on every deployment up
to float round-off (aggregation order differs); the property suite in
``tests/runtime`` checks this on randomized models.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable

import numpy as np

from repro import obs
from repro.core.model import SystemModel
from repro.errors import UnknownIdError
from repro.metrics.redundancy import DEFAULT_REDUNDANCY_CAP
from repro.metrics.utility import UtilityWeights

__all__ = ["EvaluationEngine", "DeploymentCursor", "engine_for"]


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(rows, nwords)`` uint64 bitset array."""
    if words.size == 0:
        return np.zeros(words.shape[0], dtype=np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8).reshape(words.shape[0], -1)
    return np.unpackbits(as_bytes, axis=1).sum(axis=1).astype(np.int64)


class EvaluationEngine:
    """Precomputed array form of a model's coverage relation.

    Engines are immutable and cheap to share; use :func:`engine_for` to
    get the per-model singleton instead of constructing one per call.
    """

    def __init__(self, model: SystemModel) -> None:
        self.model = model
        self.monitor_ids: tuple[str, ...] = tuple(sorted(model.monitors))
        self.event_ids: tuple[str, ...] = tuple(sorted(model.events))
        self._midx = {m: i for i, m in enumerate(self.monitor_ids)}
        self._eidx = {e: i for i, e in enumerate(self.event_ids)}
        with obs.span(
            "engine.build", monitors=len(self.monitor_ids), events=len(self.event_ids)
        ) as sp:
            self._build_field_universe(model)
            self._build_csr(model)
            self._build_monitor_views(model)
            self._build_alpha(model)
        obs.counter("engine.builds").inc()
        obs.histogram("engine.build_seconds").observe(sp.duration)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_field_universe(self, model: SystemModel) -> None:
        # Per event: capturable fields (deploying everything) get stable
        # bit positions; the widest event decides the word count.
        self._field_bits: list[dict[str, int]] = []
        capturable = np.zeros(len(self.event_ids), dtype=np.int64)
        for i, event_id in enumerate(self.event_ids):
            fields = sorted(model.max_fields_for_event(event_id))
            self._field_bits.append({f: b for b, f in enumerate(fields)})
            capturable[i] = len(fields)
        self.n_words = max(1, int((capturable.max(initial=0) + 63) // 64))
        self._capturable = capturable
        with np.errstate(divide="ignore"):
            inv = np.where(capturable > 0, 1.0 / np.maximum(capturable, 1), 0.0)
        self._inv_capturable = inv

    def _field_mask(self, model: SystemModel, monitor_id: str, event_index: int) -> np.ndarray:
        event_id = self.event_ids[event_index]
        bits = self._field_bits[event_index]
        mask = np.zeros(self.n_words, dtype=np.uint64)
        for data_type_id in model.evidencing_data_types(monitor_id, event_id):
            for field in model.evidence_fields(data_type_id, event_id):
                bit = bits[field]
                mask[bit // 64] |= np.uint64(1) << np.uint64(bit % 64)
        return mask

    def _build_csr(self, model: SystemModel) -> None:
        quality = {
            m: model.monitor_type(model.monitor(m).monitor_type_id).quality
            for m in self.monitor_ids
        }
        indptr = np.zeros(len(self.event_ids) + 1, dtype=np.int64)
        prov_monitor: list[int] = []
        prov_weight: list[float] = []
        prov_miss: list[float] = []
        prov_fields: list[np.ndarray] = []
        for i, event_id in enumerate(self.event_ids):
            providers = model.monitors_for_event(event_id)
            for monitor_id in sorted(providers):
                weight = providers[monitor_id]
                prov_monitor.append(self._midx[monitor_id])
                prov_weight.append(weight)
                prov_miss.append(1.0 - weight * quality[monitor_id])
                prov_fields.append(self._field_mask(model, monitor_id, i))
            indptr[i + 1] = len(prov_monitor)
        self._indptr = indptr
        self._prov_monitor = np.asarray(prov_monitor, dtype=np.int64)
        self._prov_weight = np.asarray(prov_weight, dtype=np.float64)
        self._prov_miss = np.asarray(prov_miss, dtype=np.float64)
        self._prov_fields = (
            np.vstack(prov_fields) if prov_fields else np.zeros((0, self.n_words), dtype=np.uint64)
        )

    def _build_monitor_views(self, model: SystemModel) -> None:
        # Per monitor: the events it evidences (as event indices), its
        # weight there, and its field bitset — the delta-update working
        # set of the cursor.
        by_monitor: dict[int, list[int]] = {i: [] for i in range(len(self.monitor_ids))}
        for position, monitor_index in enumerate(self._prov_monitor):
            by_monitor[int(monitor_index)].append(position)
        self._mon_events: list[np.ndarray] = []
        self._mon_weights: list[np.ndarray] = []
        self._mon_masks: list[np.ndarray] = []
        event_of_position = np.repeat(
            np.arange(len(self.event_ids), dtype=np.int64), np.diff(self._indptr)
        )
        for i in range(len(self.monitor_ids)):
            positions = np.asarray(by_monitor[i], dtype=np.int64)
            self._mon_events.append(event_of_position[positions])
            self._mon_weights.append(self._prov_weight[positions])
            self._mon_masks.append(
                self._prov_fields[positions]
                if positions.size
                else np.zeros((0, self.n_words), dtype=np.uint64)
            )

    def _build_alpha(self, model: SystemModel) -> None:
        alpha = np.zeros(len(self.event_ids), dtype=np.float64)
        attacks = model.attacks
        total_importance = sum(a.importance for a in attacks.values())
        if total_importance > 0:
            for attack in attacks.values():
                scale = attack.importance / (total_importance * attack.total_step_weight)
                for step in attack.steps:
                    alpha[self._eidx[step.event_id]] += scale * step.weight
        self._alpha = alpha

    # ------------------------------------------------------------------
    # full (vectorized) evaluation
    # ------------------------------------------------------------------

    def _deployed_mask(self, deployed: Iterable[str]) -> np.ndarray:
        mask = np.zeros(len(self.monitor_ids), dtype=bool)
        for monitor_id in deployed:
            index = self._midx.get(monitor_id)
            if index is None:
                raise UnknownIdError("monitor", monitor_id)
            mask[index] = True
        return mask

    def components(self, deployed: Iterable[str], cap: int = DEFAULT_REDUNDANCY_CAP) -> dict[str, float]:
        """Overall coverage/redundancy/richness/confidence, one pass.

        Each value matches its reference counterpart in
        :mod:`repro.metrics` up to aggregation round-off.
        """
        obs.counter("engine.full_evaluations").inc()
        with obs.span("engine.evaluate", events=len(self.event_ids)):
            return self._components(deployed, cap)

    def _components(self, deployed: Iterable[str], cap: int) -> dict[str, float]:
        mask = self._deployed_mask(deployed)
        n_events = len(self.event_ids)
        nnz = self._prov_monitor.size
        if n_events == 0 or nnz == 0:
            return {"coverage": 0.0, "redundancy": 0.0, "richness": 0.0, "confidence": 0.0}

        selected = mask[self._prov_monitor]
        # Each array is padded with one identity element so every indptr
        # value (including a trailing nnz for provider-less tail events)
        # is a valid reduceat index; clamping instead would steal the
        # last element from the preceding event's segment.  Zero-length
        # segments make reduceat return the element *at* the index, so
        # they are masked out afterwards.
        starts = self._indptr[:-1]
        empty = self._indptr[:-1] == self._indptr[1:]

        weight = np.append(np.where(selected, self._prov_weight, 0.0), 0.0)
        cov = np.maximum.reduceat(weight, starts)
        cov[empty] = 0.0

        count = np.add.reduceat(np.append(selected, False).astype(np.int64), starts)
        count[empty] = 0

        miss = np.append(np.where(selected, self._prov_miss, 1.0), 1.0)
        conf = 1.0 - np.multiply.reduceat(miss, starts)
        conf[empty] = 0.0

        fields = np.vstack(
            [
                np.where(selected[:, None], self._prov_fields, np.uint64(0)),
                np.zeros((1, self.n_words), dtype=np.uint64),
            ]
        )
        union = np.bitwise_or.reduceat(fields, starts, axis=0)
        union[empty] = 0
        pop = _popcount_rows(union)

        alpha = self._alpha
        return {
            "coverage": float(alpha @ cov),
            "redundancy": float(alpha @ (np.minimum(count, cap) / cap)),
            "richness": float(alpha @ (pop * self._inv_capturable)),
            "confidence": float(alpha @ conf),
        }

    def utility(self, deployed: Iterable[str], weights: UtilityWeights | None = None) -> float:
        """Combined utility via one vectorized pass."""
        weights = weights or UtilityWeights()
        parts = self.components(deployed, weights.redundancy_cap)
        return (
            weights.coverage * parts["coverage"]
            + weights.redundancy * parts["redundancy"]
            + weights.richness * parts["richness"]
        )

    def breakdown(self, deployed: Iterable[str], weights: UtilityWeights | None = None) -> dict[str, float]:
        """Component values plus combined utility (reference layout)."""
        weights = weights or UtilityWeights()
        parts = self.components(deployed, weights.redundancy_cap)
        return {
            "coverage": parts["coverage"],
            "redundancy": parts["redundancy"],
            "richness": parts["richness"],
            "utility": (
                weights.coverage * parts["coverage"]
                + weights.redundancy * parts["redundancy"]
                + weights.richness * parts["richness"]
            ),
        }

    def confidence(self, deployed: Iterable[str]) -> float:
        """Overall operational confidence (reporting metric)."""
        return self.components(deployed)["confidence"]

    def cursor(
        self, weights: UtilityWeights | None = None, initial: Iterable[str] = ()
    ) -> "DeploymentCursor":
        """A mutable deployment with O(affected events) delta updates."""
        return DeploymentCursor(self, weights or UtilityWeights(), initial)


class DeploymentCursor:
    """A deployment under incremental mutation.

    Additions are pure vectorized updates (``max`` for coverage, ``+1``
    for counts, ``|=`` + popcount for field bitsets); removals recompute
    only the affected events from the engine's CSR segments.
    :meth:`peek_add` prices a candidate addition without committing it.
    """

    def __init__(self, engine: EvaluationEngine, weights: UtilityWeights, initial: Iterable[str]):
        self.engine = engine
        self.weights = weights
        self._cap = weights.redundancy_cap
        n_events = len(engine.event_ids)
        self._deployed = np.zeros(len(engine.monitor_ids), dtype=bool)
        self._cov = np.zeros(n_events, dtype=np.float64)
        self._cnt = np.zeros(n_events, dtype=np.int64)
        self._union = np.zeros((n_events, engine.n_words), dtype=np.uint64)
        self._pop = np.zeros(n_events, dtype=np.int64)
        self._s_cov = 0.0
        self._s_red = 0.0
        self._s_rich = 0.0
        # Op tallies stay plain ints: cursor probes are the innermost
        # loop of greedy, too hot for per-event registry lookups.  The
        # solver drains them into the registry once per solve.
        self.ops_peek = 0
        self.ops_add = 0
        self.ops_remove = 0
        for monitor_id in sorted(set(initial)):
            self.add(monitor_id)

    # -- queries -----------------------------------------------------------

    @property
    def monitor_ids(self) -> frozenset[str]:
        """The currently deployed monitor ids."""
        ids = self.engine.monitor_ids
        return frozenset(ids[i] for i in np.flatnonzero(self._deployed))

    def __contains__(self, monitor_id: str) -> bool:
        index = self.engine._midx.get(monitor_id)
        return index is not None and bool(self._deployed[index])

    def __len__(self) -> int:
        return int(self._deployed.sum())

    def utility(self) -> float:
        """Combined utility of the current deployment."""
        w = self.weights
        return w.coverage * self._s_cov + w.redundancy * self._s_red + w.richness * self._s_rich

    def breakdown(self) -> dict[str, float]:
        """Component values plus combined utility."""
        return {
            "coverage": self._s_cov,
            "redundancy": self._s_red,
            "richness": self._s_rich,
            "utility": self.utility(),
        }

    # -- mutation ----------------------------------------------------------

    def _index_of(self, monitor_id: str) -> int:
        index = self.engine._midx.get(monitor_id)
        if index is None:
            raise UnknownIdError("monitor", monitor_id)
        return index

    def _add_deltas(
        self, index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float, float, float, np.ndarray]:
        """New per-event values and sum deltas for adding monitor ``index``."""
        engine = self.engine
        events = engine._mon_events[index]
        new_cov = np.maximum(self._cov[events], engine._mon_weights[index])
        new_cnt = self._cnt[events] + 1
        new_union = self._union[events] | engine._mon_masks[index]
        new_pop = _popcount_rows(new_union)
        alpha = engine._alpha[events]
        d_cov = float(alpha @ (new_cov - self._cov[events]))
        d_red = (
            float(alpha @ (np.minimum(new_cnt, self._cap) - np.minimum(self._cnt[events], self._cap)))
            / self._cap
        )
        d_rich = float(alpha @ ((new_pop - self._pop[events]) * engine._inv_capturable[events]))
        return events, new_cov, new_cnt, new_union, d_cov, d_red, d_rich, new_pop

    def drain_op_counts(self) -> dict[str, int]:
        """Return and reset the peek/add/remove tallies (registry flush)."""
        counts = {"peek": self.ops_peek, "add": self.ops_add, "remove": self.ops_remove}
        self.ops_peek = self.ops_add = self.ops_remove = 0
        return counts

    def peek_add(self, monitor_id: str) -> float:
        """Utility if ``monitor_id`` were added, without committing."""
        self.ops_peek += 1
        index = self._index_of(monitor_id)
        if self._deployed[index]:
            return self.utility()
        _, _, _, _, d_cov, d_red, d_rich, _ = self._add_deltas(index)
        w = self.weights
        return (
            w.coverage * (self._s_cov + d_cov)
            + w.redundancy * (self._s_red + d_red)
            + w.richness * (self._s_rich + d_rich)
        )

    def add(self, monitor_id: str) -> None:
        """Deploy one more monitor (error if already deployed)."""
        self.ops_add += 1
        index = self._index_of(monitor_id)
        if self._deployed[index]:
            raise ValueError(f"monitor {monitor_id!r} is already deployed")
        events, new_cov, new_cnt, new_union, d_cov, d_red, d_rich, new_pop = self._add_deltas(index)
        self._cov[events] = new_cov
        self._cnt[events] = new_cnt
        self._union[events] = new_union
        self._pop[events] = new_pop
        self._s_cov += d_cov
        self._s_red += d_red
        self._s_rich += d_rich
        self._deployed[index] = True

    def remove(self, monitor_id: str) -> None:
        """Withdraw a deployed monitor (error if not deployed)."""
        self.ops_remove += 1
        index = self._index_of(monitor_id)
        if not self._deployed[index]:
            raise ValueError(f"monitor {monitor_id!r} is not deployed")
        engine = self.engine
        self._deployed[index] = False
        alpha_all = engine._alpha
        inv_cap = engine._inv_capturable
        for event in engine._mon_events[index]:
            event = int(event)
            start, stop = int(engine._indptr[event]), int(engine._indptr[event + 1])
            selected = self._deployed[engine._prov_monitor[start:stop]]
            if selected.any():
                new_cov = float(engine._prov_weight[start:stop][selected].max())
                new_cnt = int(selected.sum())
                new_union = np.bitwise_or.reduce(
                    engine._prov_fields[start:stop][selected], axis=0
                )
                new_pop = int(_popcount_rows(new_union[None, :])[0])
            else:
                new_cov, new_cnt, new_pop = 0.0, 0, 0
                new_union = np.zeros(engine.n_words, dtype=np.uint64)
            alpha = float(alpha_all[event])
            self._s_cov += alpha * (new_cov - self._cov[event])
            self._s_red += (
                alpha
                * (min(new_cnt, self._cap) - min(int(self._cnt[event]), self._cap))
                / self._cap
            )
            self._s_rich += alpha * (new_pop - int(self._pop[event])) * float(inv_cap[event])
            self._cov[event] = new_cov
            self._cnt[event] = new_cnt
            self._union[event] = new_union
            self._pop[event] = new_pop


#: Per-model engine singletons; keyed weakly so models can be collected.
_ENGINES: "weakref.WeakKeyDictionary[SystemModel, EvaluationEngine]" = weakref.WeakKeyDictionary()


def engine_for(model: SystemModel) -> EvaluationEngine:
    """The shared :class:`EvaluationEngine` for ``model`` (built once)."""
    engine = _ENGINES.get(model)
    if engine is None:
        engine = EvaluationEngine(model)
        _ENGINES[model] = engine
    return engine
