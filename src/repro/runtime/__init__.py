"""Shared evaluation substrate: fast metrics, caching, parallelism.

Three layers every hot path in the repository leans on:

* :mod:`repro.runtime.engine` — the incremental metrics engine:
  per-monitor evidence bitsets precomputed from the
  :class:`~repro.core.model.SystemModel`, vectorized full evaluation,
  and O(affected events) delta evaluation through
  :class:`~repro.runtime.engine.DeploymentCursor`;
* :mod:`repro.runtime.cache` — a bounded LRU deployment-evaluation
  cache shared across sweeps, frontier enumeration, and contribution
  sampling;
* :mod:`repro.runtime.parallel` — an order-preserving process-pool map
  with deterministic seed spawning, per-task timeouts and retries
  (:mod:`repro.runtime.resilience`), and a graceful serial fallback;
* :mod:`repro.runtime.pool` — persistent worker pools with zero-copy
  shared-memory publication (build the engine's arrays once, map many
  handle-based tasks against them) and explicit lifecycle;
* :mod:`repro.runtime.faults` — the deterministic fault-injection
  harness the ``tests/faults`` suite drives the recovery paths with.

See ``docs/performance.md`` for layout details and measured impact,
and ``docs/robustness.md`` for the failure-handling semantics.
"""

from repro.runtime.cache import (
    DeploymentCache,
    cache_for,
    cached_breakdown,
    cached_utility,
    evaluation_key,
)
from repro.runtime.engine import DeploymentCursor, EvaluationEngine, engine_for
from repro.runtime.parallel import (
    WORKERS_ENV,
    parallel_map,
    resolve_workers,
    spawn_generators,
    spawn_seeds,
)
from repro.runtime.pool import (
    EngineHandle,
    PersistentPool,
    PoolError,
    SharedArrays,
    SharedArraysHandle,
    active_pool,
    attach_arrays,
    attach_engine,
    detach_all,
    publish_arrays,
    publish_engine,
    use_pool,
)
from repro.runtime.resilience import (
    MapReport,
    RetryPolicy,
    TaskFailure,
    TaskFailureError,
)

__all__ = [
    "DeploymentCache",
    "DeploymentCursor",
    "EngineHandle",
    "EvaluationEngine",
    "MapReport",
    "PersistentPool",
    "PoolError",
    "RetryPolicy",
    "SharedArrays",
    "SharedArraysHandle",
    "TaskFailure",
    "TaskFailureError",
    "WORKERS_ENV",
    "active_pool",
    "attach_arrays",
    "attach_engine",
    "cache_for",
    "cached_breakdown",
    "cached_utility",
    "detach_all",
    "engine_for",
    "evaluation_key",
    "parallel_map",
    "publish_arrays",
    "publish_engine",
    "resolve_workers",
    "spawn_generators",
    "spawn_seeds",
    "use_pool",
]
