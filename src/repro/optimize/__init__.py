"""Optimal and heuristic monitor-deployment selection.

The paper's optimization method, plus the baselines it is evaluated
against:

* :class:`~repro.optimize.problem.MaxUtilityProblem` — exact ILP:
  maximum utility under a multi-dimensional budget;
* :class:`~repro.optimize.problem.MinCostProblem` — exact ILP: minimum
  cost meeting utility/coverage requirements;
* :func:`~repro.optimize.greedy.solve_greedy` — lazy cost-effectiveness
  greedy;
* :func:`~repro.optimize.random_search.solve_random` — best-of-N random
  feasible deployments;
* :func:`~repro.optimize.annealing.solve_annealing` — simulated
  annealing with feasibility repair;
* :mod:`~repro.optimize.pareto` — budget sweeps and Pareto frontiers.
"""

from repro.optimize.annealing import solve_annealing
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.optimize.formulation import FormulationBuilder
from repro.optimize.frontier import FrontierPoint, exact_frontier
from repro.optimize.greedy import solve_greedy
from repro.optimize.greedy_cover import solve_greedy_cover
from repro.optimize.pareto import (
    SweepPoint,
    budget_sweep,
    heuristic_sweep,
    pareto_frontier,
    solve_time_profile,
)
from repro.optimize.problem import MaxUtilityProblem, MinCostProblem
from repro.optimize.random_search import solve_random
from repro.optimize.rebalance import RebalanceProblem
from repro.optimize.robust import (
    ImportanceScenario,
    RobustMaxUtilityProblem,
    scenario_utility,
)

__all__ = [
    "solve_annealing",
    "Deployment",
    "OptimizationResult",
    "FormulationBuilder",
    "FrontierPoint",
    "exact_frontier",
    "ImportanceScenario",
    "RebalanceProblem",
    "RobustMaxUtilityProblem",
    "scenario_utility",
    "solve_greedy",
    "solve_greedy_cover",
    "SweepPoint",
    "budget_sweep",
    "heuristic_sweep",
    "pareto_frontier",
    "solve_time_profile",
    "MaxUtilityProblem",
    "MinCostProblem",
    "solve_random",
]
