"""Deployments and optimization results.

A :class:`Deployment` is an immutable set of selected monitor ids tied
to the model it was computed for, with convenience evaluation methods.
:class:`OptimizationResult` packages a deployment with solve statistics
so experiment harnesses can report quality and runtime together.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.model import SystemModel
from repro.core.monitors import CostVector
from repro.errors import OptimizationError
from repro.metrics.confidence import overall_confidence
from repro.metrics.utility import UtilityWeights, utility, utility_breakdown

__all__ = ["Deployment", "OptimizationResult"]


@dataclass(frozen=True)
class Deployment:
    """A selected set of monitors within a system model."""

    model: SystemModel
    monitor_ids: frozenset[str]

    @classmethod
    def of(cls, model: SystemModel, monitor_ids: Iterable[str]) -> "Deployment":
        """Build a deployment, validating every monitor id against the model."""
        ids = frozenset(monitor_ids)
        unknown = ids - set(model.monitors)
        if unknown:
            raise OptimizationError(f"deployment references unknown monitors: {sorted(unknown)}")
        return cls(model=model, monitor_ids=ids)

    @classmethod
    def empty(cls, model: SystemModel) -> "Deployment":
        """The deployment selecting no monitors."""
        return cls(model=model, monitor_ids=frozenset())

    @classmethod
    def full(cls, model: SystemModel) -> "Deployment":
        """The deployment selecting every monitor in the model."""
        return cls(model=model, monitor_ids=frozenset(model.monitors))

    def __len__(self) -> int:
        return len(self.monitor_ids)

    def __contains__(self, monitor_id: str) -> bool:
        return monitor_id in self.monitor_ids

    def __or__(self, other: "Deployment") -> "Deployment":
        if other.model is not self.model:
            raise OptimizationError("cannot union deployments from different models")
        return Deployment(self.model, self.monitor_ids | other.monitor_ids)

    def with_monitor(self, monitor_id: str) -> "Deployment":
        """This deployment plus one monitor."""
        return Deployment.of(self.model, self.monitor_ids | {monitor_id})

    def without_monitor(self, monitor_id: str) -> "Deployment":
        """This deployment minus one monitor."""
        return Deployment(self.model, self.monitor_ids - {monitor_id})

    # -- evaluation ------------------------------------------------------

    def cost(self) -> CostVector:
        """Total multi-dimensional deployment cost."""
        return self.model.deployment_cost(self.monitor_ids)

    def utility(self, weights: UtilityWeights | None = None) -> float:
        """Combined utility under ``weights`` (library defaults if omitted)."""
        return utility(self.model, self.monitor_ids, weights)

    def breakdown(self, weights: UtilityWeights | None = None) -> dict[str, float]:
        """Component values (coverage/redundancy/richness) plus utility."""
        return utility_breakdown(self.model, self.monitor_ids, weights)

    def confidence(self) -> float:
        """Operational confidence given monitor quality."""
        return overall_confidence(self.model, self.monitor_ids)

    def by_asset(self) -> dict[str, list[str]]:
        """Selected monitor ids grouped by the asset they are placed at."""
        grouped: dict[str, list[str]] = {}
        for monitor_id in sorted(self.monitor_ids):
            asset_id = self.model.monitor(monitor_id).asset_id
            grouped.setdefault(asset_id, []).append(monitor_id)
        return grouped


@dataclass(frozen=True)
class OptimizationResult:
    """A deployment together with how it was obtained.

    ``objective`` is the solver's (or heuristic's) own objective value;
    ``utility`` is the reference metric evaluation of the returned
    deployment — for exact backends the two agree to numerical
    tolerance, a property the test suite verifies.
    """

    deployment: Deployment
    objective: float
    utility: float
    solve_seconds: float
    method: str
    optimal: bool
    stats: dict[str, float] = field(default_factory=dict)
    #: Monitors in the order the method selected them (heuristics only;
    #: empty for solvers that decide the whole set at once).
    selection_order: tuple[str, ...] = ()

    @property
    def monitor_ids(self) -> frozenset[str]:
        """Shorthand for the selected monitor ids."""
        return self.deployment.monitor_ids

    def summary(self) -> str:
        """One-line human-readable description."""
        flag = "optimal" if self.optimal else "heuristic"
        return (
            f"{self.method}: {len(self.deployment)} monitors, "
            f"utility={self.utility:.4f} ({flag}, {self.solve_seconds * 1e3:.1f} ms)"
        )
