"""Greedy baseline for the min-cost problem (weighted set cover style).

The exact :class:`~repro.optimize.problem.MinCostProblem` has a classic
heuristic counterpart: repeatedly add the monitor with the best marginal
utility per unit of scalarized cost until the utility floor is met.
This is the weighted-set-cover greedy, with the usual logarithmic
approximation flavor on coverage-like objectives; experiment T4 uses it
to show what exactness buys on the cost side.
"""

from __future__ import annotations

from dataclasses import replace

from repro import obs
from repro.core.model import SystemModel
from repro.errors import InfeasibleError, OptimizationError
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment, OptimizationResult

__all__ = ["solve_greedy_cover"]


def solve_greedy_cover(
    model: SystemModel,
    min_utility: float,
    weights: UtilityWeights | None = None,
) -> OptimizationResult:
    """Greedy low-cost deployment achieving ``utility >= min_utility``.

    Raises
    ------
    repro.errors.InfeasibleError
        If even the full deployment cannot reach the floor.
    """
    if not 0.0 <= min_utility <= 1.0:
        raise OptimizationError(f"min_utility must lie in [0, 1], got {min_utility!r}")
    weights = weights or UtilityWeights()
    with obs.span(
        "optimize.greedy_cover", monitors=len(model.monitors), min_utility=min_utility
    ) as sp:
        result = _cover(model, min_utility, weights, sp)
    obs.histogram("optimize.solve_seconds").observe(sp.duration)
    return replace(result, solve_seconds=sp.duration)


def _cover(
    model: SystemModel, min_utility: float, weights: UtilityWeights, sp: obs.Span
) -> OptimizationResult:
    ceiling = utility(model, model.monitors, weights)
    if min_utility > ceiling + 1e-12:
        raise InfeasibleError(
            f"utility floor {min_utility} exceeds the maximum attainable {ceiling:.4f}"
        )

    selected: set[str] = set()
    current = utility(model, selected, weights)
    evaluations = 0

    while current < min_utility - 1e-12:
        best_monitor: str | None = None
        best_ratio = -1.0
        best_utility = current
        for monitor_id in sorted(model.monitors):
            if monitor_id in selected:
                continue
            candidate_utility = utility(model, selected | {monitor_id}, weights)
            evaluations += 1
            gain = candidate_utility - current
            if gain <= 0:
                continue
            scalar = model.monitor_cost(monitor_id).scalarize()
            ratio = gain / scalar if scalar > 0 else float("inf")
            if ratio > best_ratio:
                best_monitor = monitor_id
                best_ratio = ratio
                best_utility = candidate_utility
        if best_monitor is None:
            # No positive-gain monitor left, yet the floor is reachable
            # by the full deployment — cannot happen for a monotone
            # utility, so treat it as a defensive infeasibility.
            raise InfeasibleError(
                f"greedy stalled at utility {current:.4f} below the floor {min_utility}"
            )
        selected.add(best_monitor)
        current = best_utility

    # Reverse-delete pass: drop monitors whose removal keeps the floor
    # (cheapest-to-keep pruning greatly tightens the greedy's cost).
    for monitor_id in sorted(
        selected, key=lambda m: -model.monitor_cost(m).scalarize()
    ):
        without = selected - {monitor_id}
        if utility(model, without, weights) >= min_utility - 1e-12:
            selected = without
    current = utility(model, selected, weights)

    obs.counter("optimize.evaluations").inc(evaluations)
    sp.set(selected=len(selected), evaluations=evaluations)
    deployment = Deployment.of(model, selected)
    return OptimizationResult(
        deployment=deployment,
        objective=deployment.cost().scalarize(),
        utility=current,
        solve_seconds=0.0,  # overwritten by the caller from the span
        method="greedy-cover",
        optimal=False,
        stats={"evaluations": float(evaluations)},
    )
