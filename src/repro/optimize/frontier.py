"""Exact cost–utility Pareto frontier by the ε-constraint method.

A budget sweep samples the frontier at arbitrary budget levels; the
ε-constraint method enumerates it **exactly**: solve max-utility under
the current budget, record the optimum, then tighten the budget to just
below the optimum's own spend and repeat.  Each iteration yields one
non-dominated (cost, utility) point, and the iteration count equals the
number of distinct frontier points — typically far fewer than the
number of deployments.

The frontier is computed over the *scalarized* cost (the classic
bi-objective picture).  Multi-dimensional budgets stay available through
:func:`repro.optimize.pareto.budget_sweep`; this module answers the
complementary question "what does the *entire* trade-off curve look
like", with proof of completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.model import SystemModel
from repro.errors import OptimizationError
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment
from repro.optimize.family import ProblemFamily
from repro.optimize.formulation import FormulationBuilder
from repro.runtime.cache import cached_utility
from repro.solver import SolveSession, solve
from repro.solver.model import MilpModel, ObjectiveSense, SolutionStatus

__all__ = ["FrontierPoint", "exact_frontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One exact Pareto-optimal trade-off between spend and utility."""

    scalar_cost: float
    utility: float
    deployment: Deployment
    solve_seconds: float


def _dispatch(
    milp: MilpModel,
    backend: str,
    time_limit: float | None,
    session: SolveSession | None,
    max_nodes: int | None = None,
    gap: float | None = None,
    family_key: str | None = None,
    bb_workers: int | None = None,
):
    if session is not None:
        # The session carries its own bb_workers (set at construction).
        return session.solve(
            milp, time_limit=time_limit, max_nodes=max_nodes, gap=gap, family_key=family_key
        )
    return solve(
        milp, backend, time_limit=time_limit, max_nodes=max_nodes, gap=gap, bb_workers=bb_workers
    )


def _solve_at_cost_cap(
    model: SystemModel,
    weights: UtilityWeights,
    cost_cap: float | None,
    backend: str,
    time_limit: float | None,
    session: SolveSession | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    family: ProblemFamily | None = None,
    bb_workers: int | None = None,
) -> tuple[frozenset[str], float] | None:
    """Max-utility deployment with scalar cost <= cap; None if infeasible."""

    def build_core() -> tuple[MilpModel, FormulationBuilder]:
        milp = MilpModel(f"frontier[{model.name}]", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, model)
        milp.set_objective(builder.utility_expression(weights))
        return milp, builder

    if family is not None:
        milp, builder = family.core("frontier-max", build_core)
        family_key = family.session_key("frontier-max")
    else:
        milp, builder = build_core()
        family_key = None
    if cost_cap is not None:
        milp.add_constraint(builder.cost_expression() <= cost_cap, name="cost_cap")
    solution = _dispatch(milp, backend, time_limit, session, max_nodes, gap, family_key, bb_workers)
    if solution.status is SolutionStatus.INFEASIBLE:
        return None
    selected = builder.selected_ids(solution.values)
    return selected, solution.objective


def _cheapest_at_utility(
    model: SystemModel,
    weights: UtilityWeights,
    utility_floor: float,
    backend: str,
    time_limit: float | None,
    session: SolveSession | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    family: ProblemFamily | None = None,
    bb_workers: int | None = None,
) -> frozenset[str]:
    """Cheapest deployment achieving at least ``utility_floor``.

    The ε-constraint step needs this second solve: the max-utility
    optimum under a cost cap may carry slack cost, which would place a
    dominated point on the frontier.
    """

    def build_core() -> tuple[MilpModel, FormulationBuilder]:
        milp = MilpModel(f"frontier-cost[{model.name}]", ObjectiveSense.MINIMIZE)
        builder = FormulationBuilder(milp, model)
        milp.set_objective(builder.cost_expression())
        # Materialize the utility encoding into the core: the builder
        # caches the expression, so the per-instance floor row below
        # adds no rows beyond itself on reuse.
        builder.utility_expression(weights)
        return milp, builder

    if family is not None:
        milp, builder = family.core("frontier-min", build_core)
        family_key = family.session_key("frontier-min")
    else:
        milp, builder = build_core()
        family_key = None
    milp.add_constraint(
        builder.utility_expression(weights) >= utility_floor, name="utility_floor"
    )
    solution = _dispatch(milp, backend, time_limit, session, max_nodes, gap, family_key, bb_workers)
    if solution.status is SolutionStatus.INFEASIBLE:
        raise OptimizationError(
            f"internal inconsistency: utility floor {utility_floor} became infeasible"
        )
    return builder.selected_ids(solution.values)


def exact_frontier(
    model: SystemModel,
    weights: UtilityWeights | None = None,
    *,
    backend: str = "scipy",
    epsilon: float = 1e-4,
    max_points: int = 1000,
    time_limit: float | None = None,
    presolve: bool = False,
    max_nodes: int | None = None,
    gap: float | None = None,
    bb_workers: int | None = None,
) -> list[FrontierPoint]:
    """The complete cost–utility Pareto frontier, cheapest point first.

    Parameters
    ----------
    epsilon:
        Cost decrement between iterations.  Must exceed the backend's
        MIP feasibility tolerance (HiGHS defaults to 1e-6, hence the
        1e-4 default) and stay below the smallest meaningful cost
        difference between deployments.
    max_points:
        Safety cap on frontier size.
    time_limit:
        Wall-clock limit in seconds applied to *each* of the frontier's
        MILP solves (two per point), not to the whole enumeration.
    presolve:
        Run every solve through one warm
        :class:`~repro.solver.session.SolveSession`: instances are
        presolved, and because each iteration only *tightens* the cost
        cap, the previous point's proven optimum is reused as a dual
        bound by the branch-and-bound backend.
    bb_workers:
        Fan each branch-and-bound solve's subtree search out across
        this many workers (see :mod:`repro.solver.parallel_bb`).
        A throughput knob only: the frontier is bit-identical at any
        worker count.

    Each returned point is Pareto-optimal; consecutive points strictly
    increase in both cost and utility.  The last point attains the
    model's maximum utility; iteration stops at zero cost, at zero
    utility, or when numerical tolerances prevent further progress.
    """
    weights = weights or UtilityWeights()
    if epsilon <= 0:
        raise OptimizationError(f"epsilon must be > 0, got {epsilon!r}")

    session = (
        SolveSession(
            backend,
            presolve=True,
            time_limit=time_limit,
            max_nodes=max_nodes,
            gap=gap,
            bb_workers=bb_workers,
        )
        if presolve
        else None
    )
    # The warm path also shares one formulation core per problem shape:
    # only the cost-cap / utility-floor rows are rebuilt per iteration.
    family = ProblemFamily(model, weights) if session is not None else None
    points: list[FrontierPoint] = []
    cost_cap: float | None = None  # start unconstrained: the max-utility end

    with obs.span("optimize.exact_frontier", backend=backend) as frontier_span:
        for index in range(max_points):
            with obs.span("frontier.point", i=index) as sp:
                outcome = _solve_at_cost_cap(
                    model,
                    weights,
                    cost_cap,
                    backend,
                    time_limit,
                    session,
                    max_nodes,
                    gap,
                    family,
                    bb_workers,
                )
                if outcome is None:
                    break  # cap below zero spend with forced cost: nothing feasible
                _, achieved = outcome
                if points and achieved >= points[-1].utility - 1e-9:
                    # No strict utility decrease despite the tighter cap:
                    # the remaining cost steps are inside solver
                    # tolerance.  Stop rather than record a duplicate/
                    # dominated point.
                    break
                # Trim slack spend: cheapest deployment at this utility level.
                trimmed = _cheapest_at_utility(
                    model,
                    weights,
                    achieved - 1e-9,
                    backend,
                    time_limit,
                    session,
                    max_nodes,
                    gap,
                    family,
                    bb_workers,
                )
                trimmed_cost = model.deployment_cost(trimmed).scalarize()
            points.append(
                FrontierPoint(
                    scalar_cost=trimmed_cost,
                    utility=cached_utility(model, trimmed, weights),
                    deployment=Deployment.of(model, trimmed),
                    solve_seconds=sp.stop(),
                )
            )
            if trimmed_cost <= 0.0 or achieved <= 0.0:
                break
            cost_cap = trimmed_cost - epsilon
        frontier_span.set(points=len(points))

    points.reverse()  # cheapest first
    return points
