"""Deployment rebalancing with switching costs.

Real deployments evolve: re-optimizing from scratch after every model
change produces churn (decommissioning running monitors, installing new
ones) that has its own cost — change tickets, agent rollouts, analyst
retraining.  :class:`RebalanceProblem` makes that trade-off explicit::

    maximize  utility(x) - removal_penalty * sum_{m in current} (1 - x_m)
                         - addition_penalty * sum_{m not in current} x_m
    subject to cost(x) <= budget

Penalties are in utility units per changed monitor, so a penalty of
0.01 means "one change is worth one utility point" (on the 0–1 scale).
With both penalties 0 this reduces exactly to
:class:`~repro.optimize.problem.MaxUtilityProblem`; with penalties
large it returns the current deployment (trimmed to the budget).  The
paper's incremental workflow (pin existing monitors, never remove) is
the ``removal_penalty = inf`` limit, available directly through
``MaxUtilityProblem(forced_monitors=...)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro import obs
from repro.core.model import SystemModel
from repro.errors import InfeasibleError, OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.optimize.formulation import FormulationBuilder
from repro.solver import solve
from repro.solver.expressions import LinearExpression
from repro.solver.model import MilpModel, ObjectiveSense, SolutionStatus

__all__ = ["RebalanceProblem"]


class RebalanceProblem:
    """Re-optimize a deployment, charging for every change made.

    Parameters
    ----------
    model:
        The (possibly updated) system model.
    budget:
        Budget for the *new* deployment.
    current_monitors:
        Monitors currently running.  Ids no longer present in the model
        (retired assets) are ignored with no penalty.
    removal_penalty, addition_penalty:
        Utility-units charged per removed / added monitor, >= 0.
    """

    def __init__(
        self,
        model: SystemModel,
        budget: Budget,
        current_monitors: Iterable[str],
        weights: UtilityWeights | None = None,
        *,
        removal_penalty: float = 0.01,
        addition_penalty: float = 0.005,
    ):
        self.model = model
        self.budget = budget
        self.weights = weights or UtilityWeights()
        self.current = frozenset(current_monitors) & frozenset(model.monitors)
        if removal_penalty < 0 or addition_penalty < 0:
            raise OptimizationError("change penalties must be >= 0")
        self.removal_penalty = removal_penalty
        self.addition_penalty = addition_penalty

    def build(self) -> tuple[MilpModel, FormulationBuilder]:
        """Construct the penalized MILP without solving."""
        milp = MilpModel(f"rebalance[{self.model.name}]", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, self.model)
        objective = builder.utility_expression(self.weights)

        change_terms: list[tuple] = []
        constant = 0.0
        for monitor_id, var in builder.selection.items():
            if monitor_id in self.current:
                # removal: (1 - x) * removal_penalty
                change_terms.append((var, self.removal_penalty))
                constant -= self.removal_penalty
            else:
                change_terms.append((var, -self.addition_penalty))
        objective = objective + LinearExpression.sum_of(change_terms, constant)

        milp.set_objective(objective)
        builder.add_budget_constraints(self.budget)
        return milp, builder

    def solve(self, backend: str = "scipy", *, time_limit: float | None = None) -> OptimizationResult:
        """Solve; ``stats`` reports the change set sizes and penalties paid."""
        with obs.span("optimize.rebalance", current=len(self.current)) as sp:
            with obs.span("optimize.formulate"):
                milp, builder = self.build()
            sp.set(variables=milp.num_variables, constraints=milp.num_constraints)
            solution = solve(milp, backend, time_limit=time_limit)
        obs.histogram("optimize.solve_seconds").observe(sp.duration)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleError("no deployment fits the budget")
        selected = builder.selected_ids(solution.values)
        removed = self.current - selected
        added = selected - self.current
        achieved = utility(self.model, selected, self.weights)
        return OptimizationResult(
            deployment=Deployment.of(self.model, selected),
            objective=solution.objective,
            utility=achieved,
            solve_seconds=sp.duration,
            method=f"rebalance-ilp/{solution.backend}",
            optimal=solution.is_optimal,
            stats={
                "variables": float(milp.num_variables),
                "constraints": float(milp.num_constraints),
                "removed": float(len(removed)),
                "added": float(len(added)),
                "change_penalty_paid": (
                    self.removal_penalty * len(removed)
                    + self.addition_penalty * len(added)
                ),
            },
        )
