"""Greedy cost-effectiveness baseline.

The classic heuristic the paper's exact method is compared against:
repeatedly add the budget-feasible monitor with the best marginal
utility per unit of (scalarized) cost, until no monitor fits or none
improves utility.  Because coverage-style utility is submodular, greedy
is usually close to optimal — quantifying that gap across budgets is
exactly what experiment F1 shows.

A lazy-evaluation queue keeps re-evaluations to a minimum: marginal
gains only shrink as the deployment grows, so a candidate whose cached
gain still tops the queue after re-evaluation is guaranteed best.

Candidate probes price additions through the runtime substrate's
:class:`~repro.runtime.engine.DeploymentCursor` (delta evaluation over
just the events a monitor evidences) instead of re-evaluating the full
deployment; ``incremental=False`` keeps the reference-metrics path for
equivalence testing and benchmarking.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable
from dataclasses import replace

from repro import obs
from repro.core.model import SystemModel
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.runtime.engine import engine_for

__all__ = ["solve_greedy"]


def solve_greedy(
    model: SystemModel,
    budget: Budget,
    weights: UtilityWeights | None = None,
    *,
    forced_monitors: Iterable[str] = (),
    incremental: bool = True,
) -> OptimizationResult:
    """Greedy max-utility deployment under ``budget``.

    Zero-cost monitors with positive gain are always taken (their ratio
    is infinite); ties between finite ratios break on monitor id for
    determinism.  ``incremental`` switches between cursor-based delta
    evaluation (default) and the reference full re-evaluation; both
    pick the same monitors (regression-tested on the case study).
    """
    weights = weights or UtilityWeights()
    with obs.span(
        "optimize.greedy", monitors=len(model.monitors), incremental=incremental
    ) as sp:
        result = _greedy(model, budget, weights, forced_monitors, incremental, sp)
    obs.histogram("optimize.solve_seconds").observe(sp.duration)
    return replace(result, solve_seconds=sp.duration)


def _greedy(
    model: SystemModel,
    budget: Budget,
    weights: UtilityWeights,
    forced_monitors: Iterable[str],
    incremental: bool,
    sp: obs.Span,
) -> OptimizationResult:
    selected: set[str] = set(forced_monitors)
    spend = model.deployment_cost(selected)
    order: list[str] = []

    if incremental:
        cursor = engine_for(model).cursor(weights, initial=selected)
        current_utility = cursor.utility()

        def probe(monitor_id: str) -> float:
            return cursor.peek_add(monitor_id)

        def commit(monitor_id: str) -> float:
            cursor.add(monitor_id)
            return cursor.utility()

    else:
        current_utility = utility(model, selected, weights)

        def probe(monitor_id: str) -> float:
            return utility(model, selected | {monitor_id}, weights)

        def commit(monitor_id: str) -> float:
            return utility(model, selected, weights)

    def scalar_cost(monitor_id: str) -> float:
        return model.monitor_cost(monitor_id).scalarize()

    def gain_ratio(monitor_id: str) -> tuple[float, float]:
        """(marginal utility, utility-per-cost ratio) of adding a monitor."""
        gain = probe(monitor_id) - current_utility
        cost = scalar_cost(monitor_id)
        ratio = gain / cost if cost > 0 else (float("inf") if gain > 0 else 0.0)
        return gain, ratio

    # Max-heap of (-ratio, tiebreak, monitor, round evaluated).
    counter = itertools.count()
    heap: list[tuple[float, int, str, int]] = []
    round_number = 0
    for monitor_id in model.monitors:
        if monitor_id in selected:
            continue
        _, ratio = gain_ratio(monitor_id)
        heapq.heappush(heap, (-ratio, next(counter), monitor_id, round_number))

    evaluations = len(heap)
    while heap:
        neg_ratio, _, monitor_id, evaluated_round = heapq.heappop(heap)
        if monitor_id in selected:
            continue
        if not budget.allows(spend + model.monitor_cost(monitor_id)):
            continue  # does not fit now; it never will (costs are fixed)
        if evaluated_round != round_number:
            # Stale gain: re-evaluate and re-queue (lazy evaluation).
            gain, ratio = gain_ratio(monitor_id)
            evaluations += 1
            if gain <= 0:
                continue
            heapq.heappush(heap, (-ratio, next(counter), monitor_id, round_number))
            continue
        if -neg_ratio <= 0:
            break  # best candidate adds nothing; so does everything below it
        with obs.span("greedy.select", monitor=monitor_id):
            selected.add(monitor_id)
            order.append(monitor_id)
            spend = spend + model.monitor_cost(monitor_id)
            current_utility = commit(monitor_id)
        round_number += 1

    if incremental:
        ops = cursor.drain_op_counts()
        obs.counter("engine.cursor_peeks").inc(ops["peek"])
        obs.counter("engine.cursor_adds").inc(ops["add"])
        obs.counter("engine.cursor_removes").inc(ops["remove"])
    obs.counter("optimize.evaluations").inc(evaluations)
    sp.set(selected=len(order), evaluations=evaluations)

    deployment = Deployment.of(model, selected)
    return OptimizationResult(
        deployment=deployment,
        objective=current_utility,
        utility=current_utility,
        solve_seconds=0.0,  # overwritten by the caller from the span
        method="greedy",
        optimal=False,
        stats={"evaluations": float(evaluations)},
        selection_order=tuple(order),
    )
