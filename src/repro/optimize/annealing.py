"""Simulated-annealing baseline.

A local-search heuristic between random sampling and the exact ILP:
single-monitor flip moves over the feasible region, Metropolis
acceptance with a geometric cooling schedule.  Moves that would violate
the budget are repaired by evicting random monitors until the candidate
fits, which keeps the walk inside the feasible region without wasting
iterations.

Deterministic for a fixed ``seed``; used by experiments F1/F7 as a
stronger heuristic baseline than greedy on instances where greedy's
myopia bites (redundancy-heavy weights).

Candidate moves are priced through the runtime substrate's
:class:`~repro.runtime.engine.DeploymentCursor`: a flip touches only
the events the flipped monitor evidences, so each Metropolis step costs
O(affected events) instead of a full metric re-evaluation.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro import obs
from repro.core.model import SystemModel
from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.runtime.engine import engine_for

__all__ = ["solve_annealing"]


def solve_annealing(
    model: SystemModel,
    budget: Budget,
    weights: UtilityWeights | None = None,
    *,
    iterations: int = 2000,
    initial_temperature: float = 0.05,
    cooling: float = 0.999,
    seed: int = 0,
) -> OptimizationResult:
    """Simulated annealing over budget-feasible deployments.

    Parameters
    ----------
    iterations:
        Number of proposed moves.
    initial_temperature:
        Starting temperature on the utility scale (utility is in
        ``[0, 1]``, so 0.05 accepts early ~5-point downhill moves).
    cooling:
        Geometric decay factor applied each iteration.
    """
    if iterations < 1:
        raise OptimizationError(f"iterations must be >= 1, got {iterations!r}")
    if not 0.0 < cooling <= 1.0:
        raise OptimizationError(f"cooling must lie in (0, 1], got {cooling!r}")
    weights = weights or UtilityWeights()
    with obs.span(
        "optimize.annealing", monitors=len(model.monitors), iterations=iterations
    ) as sp:
        result = _anneal(model, budget, weights, iterations, initial_temperature, cooling, seed, sp)
    obs.histogram("optimize.solve_seconds").observe(sp.duration)
    return replace(result, solve_seconds=sp.duration)


def _anneal(
    model: SystemModel,
    budget: Budget,
    weights: UtilityWeights,
    iterations: int,
    initial_temperature: float,
    cooling: float,
    seed: int,
    sp: obs.Span,
) -> OptimizationResult:
    rng = np.random.default_rng(seed)
    monitor_ids = list(model.monitors)

    if not monitor_ids:
        empty = Deployment.empty(model)
        return OptimizationResult(
            deployment=empty,
            objective=0.0,
            utility=0.0,
            solve_seconds=0.0,  # overwritten by the caller from the span
            method="annealing",
            optimal=False,
            stats={"iterations": 0.0, "accepted": 0.0},
        )

    current: set[str] = set()
    cursor = engine_for(model).cursor(weights)
    current_utility = cursor.utility()
    best: frozenset[str] = frozenset()
    best_utility = current_utility
    temperature = initial_temperature
    accepted = 0

    for iteration in range(iterations):
        with obs.span("annealing.iteration", i=iteration):
            flip = monitor_ids[int(rng.integers(len(monitor_ids)))]
            candidate = set(current)
            if flip in candidate:
                candidate.remove(flip)
            else:
                candidate.add(flip)
                # Repair: evict random members until the candidate fits.
                while not budget.allows(model.deployment_cost(candidate)) and len(candidate) > 1:
                    evictable = sorted(candidate - {flip})
                    if not evictable:
                        break
                    candidate.remove(evictable[int(rng.integers(len(evictable)))])
                if not budget.allows(model.deployment_cost(candidate)):
                    temperature *= cooling
                    continue  # the flipped monitor alone exceeds the budget

            # Apply the move on the cursor; undo (in reverse) on rejection.
            applied: list[tuple[str, str]] = []
            for monitor_id in sorted(current - candidate):
                cursor.remove(monitor_id)
                applied.append(("add", monitor_id))
            for monitor_id in sorted(candidate - current):
                cursor.add(monitor_id)
                applied.append(("remove", monitor_id))
            candidate_utility = cursor.utility()
            delta = candidate_utility - current_utility
            if delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-12)):
                current = candidate
                current_utility = candidate_utility
                accepted += 1
                if current_utility > best_utility:
                    best_utility = current_utility
                    best = frozenset(current)
            else:
                for action, monitor_id in reversed(applied):
                    if action == "add":
                        cursor.add(monitor_id)
                    else:
                        cursor.remove(monitor_id)
            temperature *= cooling

    ops = cursor.drain_op_counts()
    obs.counter("engine.cursor_peeks").inc(ops["peek"])
    obs.counter("engine.cursor_adds").inc(ops["add"])
    obs.counter("engine.cursor_removes").inc(ops["remove"])
    sp.set(accepted=accepted)

    return OptimizationResult(
        deployment=Deployment.of(model, best),
        objective=best_utility,
        utility=best_utility,
        solve_seconds=0.0,  # overwritten by the caller from the span
        method="annealing",
        optimal=False,
        stats={"iterations": float(iterations), "accepted": float(accepted)},
    )
