"""Scenario-robust monitor placement.

Attack importance values are estimates; a deployment tuned to one
estimate can crater when the threat landscape shifts.  The robust
variant optimizes the **worst case over importance scenarios**::

    maximize   t
    subject to t <= utility_s(x)   for every scenario s
               cost(x) <= budget

where ``utility_s`` is the utility expression with attack importance
taken from scenario ``s``.  Because each ``utility_s`` is linear in the
same auxiliary variables, the max-min program stays a MILP: one
continuous epigraph variable ``t`` plus one constraint per scenario.

Scenario builders for the common cases (reweighting attack classes,
dropping attacks, flat importance) live here too.

:func:`per_scenario_optima` complements the max-min solve: it optimizes
each scenario *in isolation* (the clairvoyant benchmark the robust
deployment is measured against).  The scenario solves are independent,
so they fan out over :func:`~repro.runtime.parallel.parallel_map`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro import obs
from repro.core.model import SystemModel
from repro.errors import InfeasibleError, OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.optimize.formulation import FormulationBuilder
from repro.runtime.parallel import parallel_map, resolve_workers
from repro.runtime.pool import PersistentPool
from repro.runtime.resilience import MapReport, RetryPolicy
from repro.solver import SolveSession, solve
from repro.solver.expressions import LinearExpression
from repro.solver.model import MilpModel, ObjectiveSense, SolutionStatus

__all__ = [
    "ImportanceScenario",
    "RobustMaxUtilityProblem",
    "per_scenario_optima",
    "scenario_utility",
]


class ImportanceScenario:
    """A named reassignment of attack importance values.

    ``overrides`` maps attack ids to importance in ``(0, 1]``; attacks
    absent from the mapping keep their model importance.  An override of
    exactly ``0`` removes the attack from the scenario entirely (the
    threat retired).
    """

    def __init__(self, name: str, overrides: Mapping[str, float] | None = None):
        self.name = name
        self.overrides = dict(overrides or {})
        for attack_id, importance in self.overrides.items():
            if not 0.0 <= importance <= 1.0:
                raise OptimizationError(
                    f"scenario {name!r}: importance for {attack_id!r} must lie "
                    f"in [0, 1], got {importance!r}"
                )

    def importance_of(self, model: SystemModel, attack_id: str) -> float:
        """The attack's importance under this scenario."""
        if attack_id in self.overrides:
            return self.overrides[attack_id]
        return model.attack(attack_id).importance

    def validate_against(self, model: SystemModel) -> None:
        """Check every override references a model attack."""
        unknown = set(self.overrides) - set(model.attacks)
        if unknown:
            raise OptimizationError(
                f"scenario {self.name!r} references unknown attacks: {sorted(unknown)}"
            )

    def __repr__(self) -> str:
        return f"ImportanceScenario({self.name!r}, {len(self.overrides)} overrides)"


def _scenario_event_weights(
    model: SystemModel, scenario: ImportanceScenario
) -> dict[str, float]:
    """Per-event utility weights under a scenario's importance values."""
    importances = {
        attack_id: scenario.importance_of(model, attack_id) for attack_id in model.attacks
    }
    total = sum(importances.values())
    weights: dict[str, float] = {}
    if total == 0:
        return weights
    for attack in model.attacks.values():
        scale = importances[attack.attack_id] / total / attack.total_step_weight
        if scale == 0:
            continue
        for step in attack.steps:
            weights[step.event_id] = weights.get(step.event_id, 0.0) + scale * step.weight
    return weights


def _scenario_utility_expression(
    builder: FormulationBuilder,
    scenario: ImportanceScenario,
    weights: UtilityWeights,
) -> LinearExpression:
    """Linear utility expression with scenario-adjusted importances."""
    expr = LinearExpression()
    for event_id, base in _scenario_event_weights(builder.model, scenario).items():
        if weights.coverage > 0:
            expr = expr + builder.coverage_level(event_id) * (weights.coverage * base)
        if weights.redundancy > 0:
            expr = expr + builder.redundancy_level(event_id, weights.redundancy_cap) * (
                weights.redundancy * base
            )
        if weights.richness > 0:
            expr = expr + builder.richness_level(event_id) * (weights.richness * base)
    return expr


def scenario_utility(
    model: SystemModel,
    deployed: frozenset[str] | set[str],
    scenario: ImportanceScenario,
    weights: UtilityWeights | None = None,
) -> float:
    """Reference (direct) evaluation of utility under a scenario.

    Mirrors :func:`repro.metrics.utility.utility` with the scenario's
    importance values; the ILP's scenario expressions must agree with
    this function at 0/1 points (property-tested).
    """
    from repro.metrics.coverage import event_coverage
    from repro.metrics.redundancy import event_redundancy
    from repro.metrics.richness import event_richness

    weights = weights or UtilityWeights()
    deployed_set = set(deployed)
    value = 0.0
    for event_id, base in _scenario_event_weights(model, scenario).items():
        if weights.coverage > 0:
            value += weights.coverage * base * event_coverage(model, deployed_set, event_id)
        if weights.redundancy > 0:
            value += weights.redundancy * base * event_redundancy(
                model, deployed_set, event_id, weights.redundancy_cap
            )
        if weights.richness > 0:
            value += weights.richness * base * event_richness(model, deployed_set, event_id)
    return value


def _scenario_optimum_job(
    task: tuple[
        SystemModel,
        Budget,
        ImportanceScenario,
        UtilityWeights,
        str,
        float | None,
        bool,
        SolveSession | None,
    ],
) -> OptimizationResult:
    model, budget, scenario, weights, backend, time_limit, presolve, session = task
    with obs.span("optimize.scenario_optimum", scenario=scenario.name) as sp:
        milp = MilpModel(f"scenario[{model.name}/{scenario.name}]", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, model)
        milp.set_objective(_scenario_utility_expression(builder, scenario, weights))
        builder.add_budget_constraints(budget)
        if session is not None:
            solution = session.solve(milp, time_limit=time_limit)
        else:
            solution = solve(milp, backend, time_limit=time_limit, presolve=presolve)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleError(f"no deployment fits the budget in scenario {scenario.name!r}")
        selected = builder.selected_ids(solution.values)
        achieved = scenario_utility(model, selected, scenario, weights)
    return OptimizationResult(
        deployment=Deployment.of(model, selected),
        objective=solution.objective,
        utility=achieved,
        solve_seconds=sp.duration,
        method=f"scenario-ilp/{solution.backend}",
        optimal=solution.is_optimal,
        stats={"scenario_utility": achieved},
    )


def per_scenario_optima(
    model: SystemModel,
    budget: Budget,
    scenarios: Sequence[ImportanceScenario],
    weights: UtilityWeights | None = None,
    *,
    backend: str = "scipy",
    time_limit: float | None = None,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
    presolve: bool = False,
    pool: PersistentPool | None = None,
) -> dict[str, OptimizationResult]:
    """Optimal deployment for each scenario solved in isolation.

    The clairvoyant benchmark: ``per_scenario_optima(...)[s].utility``
    is the best any deployment could do if scenario ``s`` were known in
    advance, so the gap to the robust deployment's utility under ``s``
    is the price of robustness.  Results are keyed by scenario name and
    rebound to the caller's ``model``; ``workers > 1`` distributes the
    independent solves over a process pool without changing any result.
    ``policy`` adds per-scenario timeouts/retries; scenarios dropped by
    ``on_failure="skip"`` are simply absent from the mapping (and listed
    by index in ``report.skipped``).

    ``presolve`` reduces each scenario's MILP before solving.  Scenario
    instances share all constraints and differ only in the objective,
    so on a serial run this upgrades to a shared
    :class:`~repro.solver.session.SolveSession` whose previous optimum
    seeds the next scenario's incumbent (sessions cannot cross process
    boundaries; parallel runs presolve independently).  ``pool`` (or an
    ambient :func:`~repro.runtime.pool.use_pool`) reuses one persistent
    executor instead of spinning a pool up per call.
    """
    weights = weights or UtilityWeights()
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise OptimizationError(f"duplicate scenario names: {names}")
    for scenario in scenarios:
        scenario.validate_against(model)
    report = report if report is not None else MapReport()
    serial = resolve_workers(workers) <= 1 or len(scenarios) <= 1
    session = (
        SolveSession(backend, presolve=True, time_limit=time_limit)
        if presolve and serial
        else None
    )
    results = parallel_map(
        _scenario_optimum_job,
        [
            (model, budget, scenario, weights, backend, time_limit, presolve, session)
            for scenario in scenarios
        ],
        workers=workers,
        policy=policy,
        report=report,
        pool=pool,
    )
    if report.skipped:
        dropped = set(report.skipped)
        names = [name for index, name in enumerate(names) if index not in dropped]
    rebound = []
    for result in results:
        if result.deployment.model is not model:
            result = OptimizationResult(
                deployment=Deployment.of(model, result.deployment.monitor_ids),
                objective=result.objective,
                utility=result.utility,
                solve_seconds=result.solve_seconds,
                method=result.method,
                optimal=result.optimal,
                stats=result.stats,
                selection_order=result.selection_order,
            )
        rebound.append(result)
    return dict(zip(names, rebound))


class RobustMaxUtilityProblem:
    """Maximize worst-case utility over importance scenarios, under budget.

    With a single scenario this reduces exactly to
    :class:`~repro.optimize.problem.MaxUtilityProblem` (tested).  The
    model's own importance values always participate as the implicit
    ``"nominal"`` scenario unless ``include_nominal=False``.
    """

    def __init__(
        self,
        model: SystemModel,
        budget: Budget,
        scenarios: Sequence[ImportanceScenario],
        weights: UtilityWeights | None = None,
        *,
        include_nominal: bool = True,
    ):
        self.model = model
        self.budget = budget
        self.weights = weights or UtilityWeights()
        self.scenarios = list(scenarios)
        if include_nominal:
            self.scenarios.insert(0, ImportanceScenario("nominal"))
        if not self.scenarios:
            raise OptimizationError("robust optimization needs at least one scenario")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise OptimizationError(f"duplicate scenario names: {names}")
        for scenario in self.scenarios:
            scenario.validate_against(model)

    def build(self) -> tuple[MilpModel, FormulationBuilder]:
        """Construct the epigraph MILP without solving."""
        milp = MilpModel(f"robust[{self.model.name}]", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, self.model)
        t = milp.continuous("worst_case_utility", 0.0, 1.0)
        for scenario in self.scenarios:
            expr = _scenario_utility_expression(builder, scenario, self.weights)
            milp.add_constraint(t <= expr, name=f"scenario[{scenario.name}]")
        builder.add_budget_constraints(self.budget)
        milp.set_objective(t + 0.0)
        return milp, builder

    def solve(
        self,
        backend: str = "scipy",
        *,
        time_limit: float | None = None,
        presolve: bool = False,
    ) -> OptimizationResult:
        """Solve and report per-scenario utilities in ``stats``."""
        with obs.span("optimize.robust", scenarios=len(self.scenarios)) as sp:
            with obs.span("optimize.formulate"):
                milp, builder = self.build()
            sp.set(variables=milp.num_variables, constraints=milp.num_constraints)
            solution = solve(milp, backend, time_limit=time_limit, presolve=presolve)
        obs.histogram("optimize.solve_seconds").observe(sp.duration)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleError("no deployment fits the budget")
        selected = builder.selected_ids(solution.values)
        per_scenario = {
            f"utility[{s.name}]": scenario_utility(self.model, selected, s, self.weights)
            for s in self.scenarios
        }
        worst = min(per_scenario.values())
        return OptimizationResult(
            deployment=Deployment.of(self.model, selected),
            objective=solution.objective,
            utility=worst,
            solve_seconds=sp.duration,
            method=f"robust-ilp/{solution.backend}",
            optimal=solution.is_optimal,
            stats={
                "variables": float(milp.num_variables),
                "constraints": float(milp.num_constraints),
                "scenarios": float(len(self.scenarios)),
                **per_scenario,
            },
        )
