"""Shared formulation cores for families of related MILPs.

A budget sweep or a frontier enumeration solves many instances over the
*same* system model and utility weights: the binary selection variables,
the per-event metric linearizations, and the objective are rebuilt
identically at every point, and only a handful of rows (budget limits, a
cost cap, a utility floor) change.  On large models that rebuild is a
third or more of sweep wall time.

:class:`ProblemFamily` amortizes it exactly.  Each distinct problem
*shape* (keyed by the caller) builds its expensive core once; before
every reuse the model is rolled back to the core's constraint count with
:meth:`~repro.solver.model.MilpModel.truncate_constraints` and the
caller re-appends the per-instance rows in the same order a cold build
would.  Because variables, the objective, and row order are identical
to a from-scratch build, the compiled standard form — and therefore the
solver's answer, down to tie-breaking — is bit-identical to a cold
solve.  Per-instance rows must not introduce new variables; every core
factory used here materializes all auxiliary encodings up front.

Families hold live model state, so (like
:class:`~repro.solver.session.SolveSession`) they are neither
thread-safe nor able to cross process boundaries: parallel sweeps keep
building per point.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable

from repro import obs
from repro.core.model import SystemModel
from repro.metrics.utility import UtilityWeights
from repro.optimize.formulation import FormulationBuilder
from repro.solver.model import MilpModel

__all__ = ["ProblemFamily"]

#: Process-wide uid so two families never share a session key.
_FAMILY_IDS = itertools.count()


class ProblemFamily:
    """Reusable formulation cores over one model and weight vector.

    Parameters
    ----------
    model:
        The system model every instance of the family formulates.
    weights:
        Utility weights baked into the cores' objectives and floors;
        library defaults if omitted.  Consumers must check their own
        weights against :attr:`weights` before reusing a core — a core
        built for different weights would silently optimize the wrong
        objective.
    """

    def __init__(self, model: SystemModel, weights: UtilityWeights | None = None):
        self.model = model
        self.weights = weights or UtilityWeights()
        self._uid = next(_FAMILY_IDS)
        #: key -> (milp, builder, constraint count of the frozen core)
        self._cores: dict[str, tuple[MilpModel, FormulationBuilder, int]] = {}

    def session_key(self, core_key: str) -> str:
        """Stable session family key for one of this family's cores.

        Every instance extended from the same core shares a structure
        by construction, so :class:`~repro.solver.session.SolveSession`
        can group them without hashing the model
        (:func:`~repro.solver.session.structure_signature`) on every
        solve.  The uid keeps keys distinct across family objects.
        """
        return f"family:{self._uid}:{core_key}"

    @property
    def core_count(self) -> int:
        """How many distinct cores this family has built."""
        return len(self._cores)

    def estimated_bytes(self) -> int:
        """Rough footprint of the cached cores, in bytes.

        Exact for the sparse-row memo (each cached row is one
        ``(cols, vals)`` fragment pair — nnz-proportional, not the
        dense ``vars x 8`` the old memo charged) plus flat per-term
        estimates for the symbolic constraint store.  Consumed by the
        service's LRU-by-bytes cache (:mod:`repro.service.cache`).
        """
        total = 0
        for milp, _builder, _base_rows in self._cores.values():
            total += 96 * milp.num_variables
            total += sum(
                cols.nbytes + vals.nbytes + 96
                for _c, cols, vals, _rhs, _eq in milp._row_cache
            )
            total += sum(
                48 * len(constraint.expression.terms) + 120
                for constraint in milp.constraints
            )
        return total

    def core(
        self,
        key: str,
        factory: Callable[[], tuple[MilpModel, FormulationBuilder]],
    ) -> tuple[MilpModel, FormulationBuilder]:
        """The shared core for ``key``, rolled back and ready to extend.

        On first use ``factory`` builds the core — variables, auxiliary
        encodings, objective, and any rows shared by every instance —
        and its constraint count is recorded.  Later uses truncate the
        model back to that mark, so the caller appends per-instance
        rows onto a clean core each time.
        """
        entry = self._cores.get(key)
        if entry is None:
            milp, builder = factory()
            self._cores[key] = (milp, builder, milp.num_constraints)
            obs.counter("optimize.family.builds").inc()
            return milp, builder
        milp, builder, base_rows = entry
        milp.truncate_constraints(base_rows)
        obs.counter("optimize.family.reuses").inc()
        return milp, builder
