"""Random-sampling baseline.

The weakest baseline in the comparison: sample budget-feasible
deployments by shuffling the monitor list and greedily filling the
budget in that random order, keep the best of ``samples`` attempts.
Its gap to the exact optimum calibrates how much structure the ILP and
greedy heuristics actually exploit.

Sampled deployments are scored through the runtime substrate's
vectorized :class:`~repro.runtime.engine.EvaluationEngine` — one array
pass per sample instead of a per-event dict walk.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.model import SystemModel
from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.runtime.engine import engine_for

__all__ = ["solve_random"]


def solve_random(
    model: SystemModel,
    budget: Budget,
    weights: UtilityWeights | None = None,
    *,
    samples: int = 100,
    seed: int = 0,
) -> OptimizationResult:
    """Best of ``samples`` random budget-feasible deployments.

    Deterministic for a fixed ``seed``.
    """
    if samples < 1:
        raise OptimizationError(f"samples must be >= 1, got {samples!r}")
    weights = weights or UtilityWeights()
    rng = np.random.default_rng(seed)
    monitor_ids = list(model.monitors)

    with obs.span("optimize.random", monitors=len(monitor_ids), samples=samples) as sp:
        engine = engine_for(model)
        best_ids: frozenset[str] = frozenset()
        best_utility = engine.utility(best_ids, weights)

        for sample in range(samples):
            with obs.span("random.sample", i=sample):
                order = rng.permutation(len(monitor_ids))
                selected: set[str] = set()
                spend = model.deployment_cost(())
                for index in order:
                    monitor_id = monitor_ids[index]
                    candidate_spend = spend + model.monitor_cost(monitor_id)
                    if budget.allows(candidate_spend):
                        selected.add(monitor_id)
                        spend = candidate_spend
                candidate_utility = engine.utility(selected, weights)
                if candidate_utility > best_utility:
                    best_utility = candidate_utility
                    best_ids = frozenset(selected)

    obs.histogram("optimize.solve_seconds").observe(sp.duration)
    return OptimizationResult(
        deployment=Deployment.of(model, best_ids),
        objective=best_utility,
        utility=best_utility,
        solve_seconds=sp.duration,
        method="random",
        optimal=False,
        stats={"samples": float(samples)},
    )
