"""The two deployment optimization problems from the paper.

* :class:`MaxUtilityProblem` — given a budget, select the monitor set of
  maximum utility whose cost fits every budget dimension (the paper's
  headline "cost-optimal, maximum-utility placement").
* :class:`MinCostProblem` — given utility/coverage requirements, select
  the cheapest monitor set that meets them (the planning dual: "what
  does this security goal cost?").

Both compile to 0/1 integer programs through
:class:`~repro.optimize.formulation.FormulationBuilder` and solve with
any registered backend, returning an
:class:`~repro.optimize.deployment.OptimizationResult` whose utility is
re-evaluated with the reference metrics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro import obs
from repro.core.model import SystemModel
from repro.errors import InfeasibleError, OptimizationError, SolverError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.optimize.family import ProblemFamily
from repro.optimize.formulation import FormulationBuilder
from repro.solver import DEFAULT_CHAIN, SolveSession, solve, solve_with_fallback
from repro.solver.model import MilpModel, ObjectiveSense, SolutionStatus

__all__ = ["MaxUtilityProblem", "MinCostProblem"]


class MaxUtilityProblem:
    """Maximize deployment utility subject to a multi-dimensional budget.

    Parameters
    ----------
    model:
        The system model to place monitors in.
    budget:
        Per-dimension spending limits; must constrain at least one
        dimension (an unconstrained problem would always select every
        useful monitor).
    weights:
        Utility weights; library defaults if omitted.
    forced_monitors:
        Monitors treated as already deployed — they are pinned selected
        and their cost counts against the budget.  This supports the
        incremental re-optimization workflow (extend an existing
        deployment after the attack catalog grows).
    max_monitors:
        Optional cap on the number of selected monitors, independent of
        cost (operational headcount: each monitor needs care and
        feeding regardless of its resource footprint).
    family:
        Optional :class:`~repro.optimize.family.ProblemFamily` sharing
        one formulation core across related problems (a budget sweep's
        points).  The family must be built over the same model instance
        and weights; :meth:`build` then reuses the cached core and only
        re-appends this problem's budget/forced/cardinality rows,
        producing a bit-identical ILP at a fraction of the cost.
    """

    def __init__(
        self,
        model: SystemModel,
        budget: Budget,
        weights: UtilityWeights | None = None,
        *,
        forced_monitors: Iterable[str] = (),
        max_monitors: int | None = None,
        family: ProblemFamily | None = None,
    ):
        self.model = model
        self.budget = budget
        self.weights = weights or UtilityWeights()
        self.forced_monitors = frozenset(forced_monitors)
        if max_monitors is not None and max_monitors < 0:
            raise OptimizationError(f"max_monitors must be >= 0, got {max_monitors!r}")
        self.max_monitors = max_monitors
        if family is not None:
            if family.model is not model:
                raise OptimizationError(
                    "ProblemFamily was built over a different model instance"
                )
            if family.weights != self.weights:
                raise OptimizationError(
                    "ProblemFamily was built for different utility weights"
                )
        self.family = family

    def _build_core(self) -> tuple[MilpModel, FormulationBuilder]:
        milp = MilpModel(f"max-utility[{self.model.name}]", ObjectiveSense.MAXIMIZE)
        builder = FormulationBuilder(milp, self.model)
        milp.set_objective(builder.utility_expression(self.weights))
        return milp, builder

    def build(self) -> tuple[MilpModel, FormulationBuilder]:
        """Construct the ILP without solving (exposed for inspection/tests)."""
        if self.family is not None:
            milp, builder = self.family.core("max-utility", self._build_core)
        else:
            milp, builder = self._build_core()
        builder.add_budget_constraints(self.budget)
        if self.forced_monitors:
            builder.add_forced_selection(self.forced_monitors)
        if self.max_monitors is not None:
            builder.add_cardinality_constraint(self.max_monitors)
        return milp, builder

    def solve(
        self,
        backend: str = "scipy",
        *,
        time_limit: float | None = None,
        presolve: bool = False,
        session: SolveSession | None = None,
        max_nodes: int | None = None,
        gap: float | None = None,
        bb_workers: int | None = None,
    ) -> OptimizationResult:
        """Solve to optimality and return the chosen deployment.

        ``presolve`` routes the ILP through the exact reduction pipeline
        first; ``session`` (which implies its own presolve setting,
        backend, and ``bb_workers``) reuses warm-start state across a
        family of related solves — pass the same session to every point
        of a sweep.  ``bb_workers`` fans branch-and-bound subtree
        exploration across workers (see
        :mod:`repro.solver.parallel_bb`); the selected deployment is
        bit-identical at any count.

        Raises
        ------
        repro.errors.InfeasibleError
            If no deployment fits the budget (only possible with forced
            monitors exceeding it — the empty deployment is otherwise
            always feasible).
        """
        with obs.span("optimize.max_utility", backend=backend) as sp:
            with obs.span("optimize.formulate"):
                milp, builder = self.build()
            sp.set(variables=milp.num_variables, constraints=milp.num_constraints)
            if session is not None:
                solution = session.solve(
                    milp,
                    time_limit=time_limit,
                    max_nodes=max_nodes,
                    gap=gap,
                    family_key=(
                        self.family.session_key("max-utility")
                        if self.family is not None
                        else None
                    ),
                )
            else:
                solution = solve(
                    milp,
                    backend,
                    time_limit=time_limit,
                    max_nodes=max_nodes,
                    gap=gap,
                    presolve=presolve,
                    bb_workers=bb_workers,
                )
        obs.histogram("optimize.solve_seconds").observe(sp.duration)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleError(
                f"no deployment fits the budget {dict(self.budget.limits)!r} "
                f"(forced monitors: {sorted(self.forced_monitors)})"
            )
        selected = builder.selected_ids(solution.values)
        deployment = Deployment.of(self.model, selected)
        return OptimizationResult(
            deployment=deployment,
            objective=solution.objective,
            utility=utility(self.model, selected, self.weights),
            solve_seconds=sp.duration,
            method=f"ilp/{solution.backend}",
            optimal=solution.is_optimal,
            stats={
                "variables": float(milp.num_variables),
                "constraints": float(milp.num_constraints),
                "nodes": float(solution.nodes_explored),
            },
        )

    def solve_with_fallback(
        self,
        backends: tuple[str, ...] = DEFAULT_CHAIN,
        *,
        time_limit: float | None = None,
        greedy_last_resort: bool = True,
        presolve: bool = False,
        max_nodes: int | None = None,
        gap: float | None = None,
        bb_workers: int | None = None,
    ) -> OptimizationResult:
        """Solve through the backend fallback chain, greedy as last resort.

        Exact backends are tried in ``backends`` order via
        :func:`repro.solver.solve_with_fallback`; the answering backend
        and the number of rescued/failed attempts land in ``stats``
        (``fallback_attempts``, ``fallback_failures``).  If *every*
        exact backend **errors** — never when one proves the model
        INFEASIBLE, which is a verdict about the budget, not a solver
        failure — and ``greedy_last_resort`` is set, the greedy
        heuristic answers instead with ``method="greedy-fallback"``.
        The greedy rescue is skipped (the chain's
        :class:`~repro.errors.SolverError` propagates) when
        ``max_monitors`` is set: greedy has no cardinality constraint,
        so its answer could silently violate the problem.

        Raises
        ------
        repro.errors.InfeasibleError
            If a backend proves no deployment fits the budget.
        repro.errors.SolverError
            If every backend errors and greedy cannot stand in.
        """
        with obs.span(
            "optimize.max_utility_fallback", backends=",".join(backends)
        ) as sp:
            with obs.span("optimize.formulate"):
                milp, builder = self.build()
            sp.set(variables=milp.num_variables, constraints=milp.num_constraints)
            try:
                outcome = solve_with_fallback(
                    milp,
                    backends,
                    time_limit=time_limit,
                    max_nodes=max_nodes,
                    gap=gap,
                    presolve=presolve,
                    bb_workers=bb_workers,
                )
            except SolverError:
                if not greedy_last_resort or self.max_monitors is not None:
                    raise
                from repro.optimize.greedy import solve_greedy

                obs.counter("optimize.greedy_rescues").inc()
                result = solve_greedy(
                    self.model,
                    self.budget,
                    self.weights,
                    forced_monitors=self.forced_monitors,
                )
                sp.set(answered="greedy")
                stats = dict(result.stats)
                stats["fallback_attempts"] = float(len(backends))
                stats["fallback_failures"] = float(len(backends))
                return OptimizationResult(
                    deployment=result.deployment,
                    objective=result.objective,
                    utility=result.utility,
                    solve_seconds=result.solve_seconds,
                    method="greedy-fallback",
                    optimal=False,
                    stats=stats,
                    selection_order=result.selection_order,
                )
            sp.set(answered=outcome.backend)
        solution = outcome.solution
        obs.histogram("optimize.solve_seconds").observe(sp.duration)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleError(
                f"no deployment fits the budget {dict(self.budget.limits)!r} "
                f"(forced monitors: {sorted(self.forced_monitors)})"
            )
        selected = builder.selected_ids(solution.values)
        deployment = Deployment.of(self.model, selected)
        return OptimizationResult(
            deployment=deployment,
            objective=solution.objective,
            utility=utility(self.model, selected, self.weights),
            solve_seconds=sp.duration,
            method=f"ilp/{solution.backend}",
            optimal=solution.is_optimal,
            stats={
                "variables": float(milp.num_variables),
                "constraints": float(milp.num_constraints),
                "nodes": float(solution.nodes_explored),
                "fallback_attempts": float(len(outcome.attempts)),
                "fallback_failures": float(len(outcome.failures)),
            },
        )


class MinCostProblem:
    """Minimize deployment cost subject to security requirements.

    At least one requirement must be given:

    ``min_utility``
        Overall utility floor under ``weights``.
    ``min_attack_coverage``
        Per-attack coverage floors, ``{attack_id: floor}``.
    ``fully_cover``
        Attacks whose every *required* step must be evidenced by at
        least one selected monitor.
    ``redundant_cover``
        Defense-in-depth floors, ``{attack_id: min_sources}``: every
        required step of the attack must be evidenced by at least
        ``min_sources`` selected monitors (a single compromised or
        failed monitor then cannot blind the kill chain).
    ``min_attack_richness``
        Forensic floors, ``{attack_id: floor}``: the attack's richness
        metric (fraction of capturable data fields collected about its
        steps) must reach ``floor`` — "we must be able to *investigate*
        this attack", not merely notice it.

    The objective is the scalarized cost; ``cost_dimension_weights``
    rebalances dimensions (default: every dimension weighs 1).
    """

    def __init__(
        self,
        model: SystemModel,
        *,
        min_utility: float | None = None,
        min_attack_coverage: Mapping[str, float] | None = None,
        fully_cover: Iterable[str] = (),
        redundant_cover: Mapping[str, int] | None = None,
        min_attack_richness: Mapping[str, float] | None = None,
        weights: UtilityWeights | None = None,
        cost_dimension_weights: Mapping[str, float] | None = None,
    ):
        self.model = model
        self.min_utility = min_utility
        self.min_attack_coverage = dict(min_attack_coverage or {})
        self.fully_cover = tuple(fully_cover)
        self.redundant_cover = dict(redundant_cover or {})
        self.min_attack_richness = dict(min_attack_richness or {})
        self.weights = weights or UtilityWeights()
        self.cost_dimension_weights = (
            None if cost_dimension_weights is None else dict(cost_dimension_weights)
        )
        if (
            min_utility is None
            and not self.min_attack_coverage
            and not self.fully_cover
            and not self.redundant_cover
            and not self.min_attack_richness
        ):
            raise OptimizationError(
                "MinCostProblem needs at least one requirement: min_utility, "
                "min_attack_coverage, fully_cover, redundant_cover, or "
                "min_attack_richness"
            )
        for attack_id, floor in self.min_attack_richness.items():
            if attack_id not in model.attacks:
                raise OptimizationError(
                    f"richness floor references unknown attack {attack_id!r}"
                )
            if not 0.0 <= floor <= 1.0:
                raise OptimizationError(
                    f"richness floor for {attack_id!r} must lie in [0, 1], got {floor!r}"
                )
        for attack_id, min_sources in self.redundant_cover.items():
            if attack_id not in model.attacks:
                raise OptimizationError(
                    f"redundant_cover references unknown attack {attack_id!r}"
                )
            if min_sources < 1:
                raise OptimizationError(
                    f"redundant_cover for {attack_id!r} must be >= 1, got {min_sources!r}"
                )
        if min_utility is not None and not 0.0 <= min_utility <= 1.0:
            raise OptimizationError(f"min_utility must lie in [0, 1], got {min_utility!r}")
        for attack_id, floor in self.min_attack_coverage.items():
            if attack_id not in model.attacks:
                raise OptimizationError(f"coverage floor references unknown attack {attack_id!r}")
            if not 0.0 <= floor <= 1.0:
                raise OptimizationError(
                    f"coverage floor for {attack_id!r} must lie in [0, 1], got {floor!r}"
                )
        for attack_id in self.fully_cover:
            if attack_id not in model.attacks:
                raise OptimizationError(f"fully_cover references unknown attack {attack_id!r}")

    def build(self) -> tuple[MilpModel, FormulationBuilder]:
        """Construct the ILP without solving (exposed for inspection/tests)."""
        milp = MilpModel(f"min-cost[{self.model.name}]", ObjectiveSense.MINIMIZE)
        builder = FormulationBuilder(milp, self.model)
        milp.set_objective(builder.cost_expression(self.cost_dimension_weights))
        if self.min_utility is not None:
            milp.add_constraint(
                builder.utility_expression(self.weights) >= self.min_utility,
                name="min_utility",
            )
        for attack_id, floor in sorted(self.min_attack_coverage.items()):
            milp.add_constraint(
                builder.attack_coverage_expression(attack_id) >= floor,
                name=f"min_cov[{attack_id}]",
            )
        for attack_id in self.fully_cover:
            builder.add_full_coverage_constraint(attack_id)
        for attack_id, min_sources in sorted(self.redundant_cover.items()):
            builder.add_full_coverage_constraint(attack_id, min_sources=min_sources)
        for attack_id, floor in sorted(self.min_attack_richness.items()):
            milp.add_constraint(
                builder.attack_richness_expression(attack_id) >= floor,
                name=f"min_rich[{attack_id}]",
            )
        return milp, builder

    def solve(
        self,
        backend: str = "scipy",
        *,
        time_limit: float | None = None,
        presolve: bool = False,
        session: SolveSession | None = None,
        max_nodes: int | None = None,
        gap: float | None = None,
        bb_workers: int | None = None,
    ) -> OptimizationResult:
        """Solve to optimality and return the cheapest compliant deployment.

        ``presolve``/``session``/``max_nodes``/``gap``/``bb_workers``
        behave as on :meth:`MaxUtilityProblem.solve`.

        Raises
        ------
        repro.errors.InfeasibleError
            If the requirements are unattainable with the model's
            monitors (e.g. a required step no monitor can evidence).
        """
        with obs.span("optimize.min_cost", backend=backend) as sp:
            with obs.span("optimize.formulate"):
                milp, builder = self.build()
            sp.set(variables=milp.num_variables, constraints=milp.num_constraints)
            if session is not None:
                solution = session.solve(
                    milp, time_limit=time_limit, max_nodes=max_nodes, gap=gap
                )
            else:
                solution = solve(
                    milp,
                    backend,
                    time_limit=time_limit,
                    max_nodes=max_nodes,
                    gap=gap,
                    presolve=presolve,
                    bb_workers=bb_workers,
                )
        obs.histogram("optimize.solve_seconds").observe(sp.duration)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleError(
                "security requirements are unattainable with the available monitors "
                f"(min_utility={self.min_utility!r}, "
                f"floors={self.min_attack_coverage!r}, fully_cover={self.fully_cover!r})"
            )
        selected = builder.selected_ids(solution.values)
        deployment = Deployment.of(self.model, selected)
        return OptimizationResult(
            deployment=deployment,
            objective=solution.objective,
            utility=utility(self.model, selected, self.weights),
            solve_seconds=sp.duration,
            method=f"ilp/{solution.backend}",
            optimal=solution.is_optimal,
            stats={
                "variables": float(milp.num_variables),
                "constraints": float(milp.num_constraints),
                "nodes": float(solution.nodes_explored),
            },
        )
