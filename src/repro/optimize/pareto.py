"""Budget sweeps and Pareto frontiers over cost/utility space.

The paper's central picture — utility as a function of the deployment
budget — is produced here: :func:`budget_sweep` solves a sequence of
:class:`~repro.optimize.problem.MaxUtilityProblem` instances at scaled
budgets, and :func:`pareto_frontier` extracts the non-dominated
(cost, utility) points from any collection of evaluated deployments.

Sweep points are independent solves, so both sweep functions accept a
``workers`` count and fan out over the runtime substrate's
:func:`~repro.runtime.parallel.parallel_map`; results are rebound to
the caller's model instance and are positionally identical to a serial
run.  Frontier extraction evaluates candidate deployments through the
shared per-model evaluation cache.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, replace

from repro import obs
from repro.core.model import SystemModel
from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment, OptimizationResult
from repro.optimize.family import ProblemFamily
from repro.optimize.problem import MaxUtilityProblem
from repro.runtime.cache import cached_utility
from repro.runtime.parallel import parallel_map, resolve_workers
from repro.runtime.pool import PersistentPool
from repro.runtime.resilience import MapReport, RetryPolicy
from repro.solver import SolveSession

__all__ = ["SweepPoint", "budget_sweep", "heuristic_sweep", "pareto_frontier", "solve_time_profile"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a budget sweep: the budget knob and its outcome."""

    fraction: float
    budget: Budget
    result: OptimizationResult

    @property
    def utility(self) -> float:
        return self.result.utility

    @property
    def scalar_cost(self) -> float:
        """Scalarized cost actually spent (not the budget limit)."""
        return self.result.deployment.cost().scalarize()


def _rebind(point: SweepPoint, model: SystemModel) -> SweepPoint:
    """Tie a (possibly unpickled) sweep point back to the caller's model.

    Worker processes return deployments referencing their own unpickled
    model copy; downstream consumers (the campaign simulator, deployment
    unions) require identity with the model they were handed.
    """
    if point.result.deployment.model is model:
        return point
    deployment = Deployment.of(model, point.result.deployment.monitor_ids)
    return replace(point, result=replace(point.result, deployment=deployment))


def _budget_sweep_job(
    task: tuple[
        SystemModel,
        float,
        UtilityWeights,
        str,
        float | None,
        bool,
        SolveSession | None,
        int | None,
        float | None,
        ProblemFamily | None,
        int | None,
    ],
) -> SweepPoint:
    (
        model,
        fraction,
        weights,
        backend,
        time_limit,
        presolve,
        session,
        max_nodes,
        gap,
        family,
        bb_workers,
    ) = task
    budget = Budget.fraction_of_total(model, fraction)
    problem = MaxUtilityProblem(model, budget, weights, family=family)
    result = problem.solve(
        backend,
        time_limit=time_limit,
        presolve=presolve,
        session=session,
        max_nodes=max_nodes,
        gap=gap,
        bb_workers=bb_workers,
    )
    return SweepPoint(fraction=fraction, budget=budget, result=result)


def budget_sweep(
    model: SystemModel,
    fractions: Sequence[float],
    weights: UtilityWeights | None = None,
    *,
    backend: str = "scipy",
    time_limit: float | None = None,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
    presolve: bool = False,
    session: SolveSession | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    pool: PersistentPool | None = None,
    bb_workers: int | None = None,
    family: ProblemFamily | None = None,
) -> list[SweepPoint]:
    """Optimal utility at each budget fraction of the total monitor cost.

    ``fractions`` are relative to the cost of deploying *every* monitor,
    so 0.0 affords nothing (beyond zero-cost monitors) and 1.0 affords
    the full deployment.  ``workers > 1`` solves the fractions across a
    process pool; the returned points match a serial run exactly.
    ``policy`` adds per-point timeouts/retries (see
    :class:`~repro.runtime.resilience.RetryPolicy`); under
    ``on_failure="skip"`` the skipped fractions are simply absent from
    the result and listed in ``report.skipped``.

    ``presolve`` routes every point through the exact reduction
    pipeline.  On a serial sweep this automatically upgrades to a
    :class:`~repro.solver.session.SolveSession`, so consecutive points
    warm-start each other (ascending budgets are the ideal case: each
    optimum stays feasible at the next, looser, point); parallel sweeps
    presolve each point independently, since sessions cannot cross
    process boundaries.  Passing an explicit ``session`` reuses state
    across *calls* too, but then requires a serial sweep.

    ``pool`` (or an ambient :func:`~repro.runtime.pool.use_pool`) reuses
    one persistent executor across this and every other map in a study;
    ``bb_workers`` fans each point's branch-and-bound subtree search out
    in turn (see :mod:`repro.solver.parallel_bb`) — the two parallelize
    different axes and compose.

    ``family`` shares one formulation core across *calls* too (the
    solve service passes its cached per-tenant
    :class:`~repro.optimize.family.ProblemFamily` so repeated sweeps
    over one model skip the core rebuild entirely).  It requires a
    serial sweep for the same reason a session does, and must have been
    built over this exact ``model`` instance and ``weights``.
    """
    weights = weights or UtilityWeights()
    serial = resolve_workers(workers) <= 1 or len(fractions) <= 1
    if session is not None and not serial:
        raise OptimizationError(
            "a SolveSession cannot cross process boundaries; "
            "use workers=1 (or pass no session) for parallel sweeps"
        )
    if family is not None and not serial:
        raise OptimizationError(
            "a ProblemFamily cannot cross process boundaries; "
            "use workers=1 (or pass no family) for parallel sweeps"
        )
    if session is None and presolve and serial:
        session = SolveSession(
            backend, presolve=True, time_limit=time_limit, max_nodes=max_nodes, gap=gap
        )
    # A session implies a serial sweep, so the points can also share one
    # formulation core: only the budget rows are rebuilt per point.
    if family is None and session is not None:
        family = ProblemFamily(model, weights)
    with obs.span("optimize.budget_sweep", points=len(fractions), backend=backend):
        points = parallel_map(
            _budget_sweep_job,
            [
                (
                    model,
                    fraction,
                    weights,
                    backend,
                    time_limit,
                    presolve,
                    session,
                    max_nodes,
                    gap,
                    family,
                    bb_workers,
                )
                for fraction in fractions
            ],
            workers=workers,
            policy=policy,
            report=report,
            pool=pool,
        )
    return [_rebind(point, model) for point in points]


def _heuristic_sweep_job(
    task: tuple[
        SystemModel,
        float,
        Callable[[SystemModel, Budget, UtilityWeights], OptimizationResult],
        UtilityWeights,
    ],
) -> SweepPoint:
    model, fraction, solver, weights = task
    budget = Budget.fraction_of_total(model, fraction)
    result = solver(model, budget, weights)
    return SweepPoint(fraction=fraction, budget=budget, result=result)


def heuristic_sweep(
    model: SystemModel,
    fractions: Sequence[float],
    solver: Callable[[SystemModel, Budget, UtilityWeights], OptimizationResult],
    weights: UtilityWeights | None = None,
    *,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
    pool: PersistentPool | None = None,
) -> list[SweepPoint]:
    """Run any ``(model, budget, weights) -> OptimizationResult`` solver
    over the same budget fractions as :func:`budget_sweep`, for
    optimal-vs-heuristic comparisons on identical budgets.  Solvers must
    be module-level callables to actually parallelize; closures fall
    back to a serial run.  ``policy``/``report``/``pool`` behave as in
    :func:`budget_sweep`."""
    weights = weights or UtilityWeights()
    with obs.span("optimize.heuristic_sweep", points=len(fractions)):
        points = parallel_map(
            _heuristic_sweep_job,
            [(model, fraction, solver, weights) for fraction in fractions],
            workers=workers,
            policy=policy,
            report=report,
            pool=pool,
        )
    return [_rebind(point, model) for point in points]


def pareto_frontier(
    deployments: Iterable[Deployment], weights: UtilityWeights | None = None
) -> list[tuple[float, float, Deployment]]:
    """Non-dominated ``(scalar cost, utility, deployment)`` triples.

    A deployment is dominated if another costs no more and yields at
    least as much utility (with one inequality strict).  The result is
    sorted by cost ascending; utilities are then strictly increasing.
    Utilities come from the shared per-model evaluation cache, so
    frontiers over sweep outputs reuse the sweeps' evaluations.
    """
    weights = weights or UtilityWeights()
    with obs.span("optimize.pareto_frontier") as sp:
        evaluated = [
            (
                d.cost().scalarize(),
                cached_utility(d.model, d.monitor_ids, weights),
                d,
            )
            for d in deployments
        ]
        sp.set(candidates=len(evaluated))
    evaluated.sort(key=lambda item: (item[0], -item[1]))
    frontier: list[tuple[float, float, Deployment]] = []
    best_utility = float("-inf")
    for cost, util, deployment in evaluated:
        if util > best_utility:
            frontier.append((cost, util, deployment))
            best_utility = util
    return frontier


def solve_time_profile(points: Iterable[SweepPoint]) -> dict[str, float]:
    """Aggregate solve-time statistics over a sweep (for scalability tables)."""
    times = [p.result.solve_seconds for p in points]
    if not times:
        return {"total": 0.0, "mean": 0.0, "max": 0.0}
    return {"total": sum(times), "mean": sum(times) / len(times), "max": max(times)}
