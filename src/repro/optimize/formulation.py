"""Exact ILP linearization of the deployment metrics.

:class:`FormulationBuilder` turns a :class:`~repro.core.model.SystemModel`
into the linear pieces of a 0/1 integer program whose expressions
provably equal the reference metrics on every 0/1 assignment:

* one **binary selection variable** ``x_m`` per deployable monitor;
* per event, a **coverage level** equal to the best evidence weight among
  selected monitors — expressed as ``common_weight * min(1, sum x)`` when
  all providers tie, and through an assignment-style linearization
  (``z_{m,e} <= x_m``, ``sum_m z_{m,e} <= 1``) when provider weights
  differ;
* per event, a **redundancy level** ``r_e <= sum(x) / cap`` capped at 1;
* per event, a **richness level**: grouped field-capture variables where
  fields with identical provider sets share one variable.

All auxiliary variables are continuous in ``[0, 1]``.  Each appears
either with a non-negative maximization coefficient or on the useful
side of a ``>=`` floor, so optimal solutions push every auxiliary to its
true metric value and integrality is required only of the ``x``
variables.  The test suite checks expression-vs-metric agreement
exhaustively on small models and property-based on random ones.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.attacks import Attack
from repro.core.model import SystemModel
from repro.errors import OptimizationError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.solver.expressions import LinearExpression, Variable
from repro.solver.model import MilpModel

__all__ = ["FormulationBuilder"]

#: Weights closer than this are treated as equal when deciding whether an
#: event's coverage can use the cheap single-variable linearization.
_WEIGHT_TIE_TOLERANCE = 1e-12


class FormulationBuilder:
    """Incrementally encodes deployment metrics into a :class:`MilpModel`.

    Per-event levels are created lazily and cached, so an event shared
    by several attacks (or used by both the objective and a floor
    constraint) is encoded exactly once.
    """

    def __init__(self, milp: MilpModel, model: SystemModel):
        self.milp = milp
        self.model = model
        #: monitor_id -> binary selection variable
        self.selection: dict[str, Variable] = {
            monitor_id: milp.binary(f"x[{monitor_id}]") for monitor_id in model.monitors
        }
        self._coverage_level: dict[str, LinearExpression] = {}
        self._redundancy_level: dict[tuple[str, int], LinearExpression] = {}
        self._richness_level: dict[str, LinearExpression] = {}
        self._utility_expression: dict[tuple[float, float, float, int], LinearExpression] = {}

    # ------------------------------------------------------------------
    # per-event levels
    # ------------------------------------------------------------------

    def coverage_level(self, event_id: str) -> LinearExpression:
        """Expression equal to the best selected evidence weight for an event.

        Zero (an empty expression) when no monitor can evidence the event.
        """
        if event_id in self._coverage_level:
            return self._coverage_level[event_id]

        providers = self.model.monitors_for_event(event_id)
        if not providers:
            expr = LinearExpression()
        else:
            provider_weights = set(providers.values())
            spread = max(provider_weights) - min(provider_weights)
            if spread <= _WEIGHT_TIE_TOLERANCE:
                # All providers tie: coverage = common_weight * [any selected].
                common_weight = max(provider_weights)
                u = self.milp.continuous(f"cov[{event_id}]", 0.0, 1.0)
                any_selected = LinearExpression.sum_of(
                    (self.selection[m], 1.0) for m in providers
                )
                self.milp.add_constraint(u <= any_selected, name=f"cov_any[{event_id}]")
                expr = u * common_weight
            else:
                # General case: choose at most one selected provider; the
                # optimizer picks the best, so the sum equals the max
                # selected weight.
                z_terms: list[tuple[Variable, float]] = []
                for monitor_id in sorted(providers):
                    z = self.milp.continuous(f"cov[{event_id}|{monitor_id}]", 0.0, 1.0)
                    self.milp.add_constraint(
                        z <= self.selection[monitor_id],
                        name=f"cov_sel[{event_id}|{monitor_id}]",
                    )
                    z_terms.append((z, providers[monitor_id]))
                self.milp.add_constraint(
                    LinearExpression.sum_of((z, 1.0) for z, _ in z_terms) <= 1.0,
                    name=f"cov_one[{event_id}]",
                )
                expr = LinearExpression.sum_of(z_terms)

        self._coverage_level[event_id] = expr
        return expr

    def redundancy_level(self, event_id: str, cap: int) -> LinearExpression:
        """Expression equal to ``min(selected evidence count, cap) / cap``."""
        key = (event_id, cap)
        if key in self._redundancy_level:
            return self._redundancy_level[key]

        providers = self.model.monitors_for_event(event_id)
        if not providers:
            expr = LinearExpression()
        else:
            r = self.milp.continuous(f"red[{event_id}|{cap}]", 0.0, 1.0)
            count = LinearExpression.sum_of((self.selection[m], 1.0) for m in providers)
            self.milp.add_constraint(r <= count * (1.0 / cap), name=f"red_cap[{event_id}|{cap}]")
            expr = r + 0.0

        self._redundancy_level[key] = expr
        return expr

    def richness_level(self, event_id: str) -> LinearExpression:
        """Expression equal to the fraction of capturable fields captured."""
        if event_id in self._richness_level:
            return self._richness_level[event_id]

        model = self.model
        capturable = model.max_fields_for_event(event_id)
        if not capturable:
            expr = LinearExpression()
        else:
            providers = model.monitors_for_event(event_id)
            # Group fields by the exact monitor set able to capture them;
            # one auxiliary variable per group, weighted by group size.
            groups: dict[frozenset[str], int] = {}
            for field_name in capturable:
                capturing = frozenset(
                    monitor_id
                    for monitor_id in providers
                    if any(
                        field_name in model.evidence_fields(dt, event_id)
                        for dt in model.evidencing_data_types(monitor_id, event_id)
                    )
                )
                if capturing:
                    groups[capturing] = groups.get(capturing, 0) + 1

            expr = LinearExpression()
            per_field = 1.0 / len(capturable)
            ordered = sorted(groups.items(), key=lambda kv: sorted(kv[0]))
            for group_index, (capturing, size) in enumerate(ordered):
                f = self.milp.continuous(f"rich[{event_id}|g{group_index}]", 0.0, 1.0)
                any_capturing = LinearExpression.sum_of(
                    (self.selection[m], 1.0) for m in capturing
                )
                self.milp.add_constraint(
                    f <= any_capturing, name=f"rich_any[{event_id}|g{group_index}]"
                )
                expr = expr + f * (per_field * size)

        self._richness_level[event_id] = expr
        return expr

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def event_objective_weights(self) -> dict[str, float]:
        """Per-event weight in overall utility.

        ``weight(e) = sum over attacks a containing e of
        (importance_a / total importance) * (step weight / attack total
        step weight)`` — exactly the coefficient event-level quantities
        carry in the reference metrics, so aggregating per event keeps
        expression and metric identical even when attacks share events.
        """
        attacks = self.model.attacks
        total_importance = sum(a.importance for a in attacks.values())
        weights: dict[str, float] = {}
        if total_importance == 0:
            return weights
        for attack in attacks.values():
            attack_scale = attack.importance / total_importance / attack.total_step_weight
            for step in attack.steps:
                weights[step.event_id] = (
                    weights.get(step.event_id, 0.0) + attack_scale * step.weight
                )
        return weights

    def utility_expression(self, weights: UtilityWeights | None = None) -> LinearExpression:
        """Linear expression equal to the combined utility metric.

        The assembled expression is cached per weight vector:
        expressions are immutable, and assembling the sum over every
        event dominates formulation time on large models, so callers
        that need the expression twice (objective and a floor
        constraint, or one instance per sweep point) pay for it once.
        """
        weights = weights or UtilityWeights()
        key = (weights.coverage, weights.redundancy, weights.richness, weights.redundancy_cap)
        cached = self._utility_expression.get(key)
        if cached is not None:
            return cached
        expr = LinearExpression()
        for event_id, base in self.event_objective_weights().items():
            if weights.coverage > 0:
                expr = expr + self.coverage_level(event_id) * (weights.coverage * base)
            if weights.redundancy > 0:
                expr = expr + self.redundancy_level(event_id, weights.redundancy_cap) * (
                    weights.redundancy * base
                )
            if weights.richness > 0:
                expr = expr + self.richness_level(event_id) * (weights.richness * base)
        self._utility_expression[key] = expr
        return expr

    def attack_coverage_expression(self, attack: Attack | str) -> LinearExpression:
        """Linear expression equal to one attack's coverage metric."""
        if isinstance(attack, str):
            attack = self.model.attack(attack)
        expr = LinearExpression()
        for step in attack.steps:
            expr = expr + self.coverage_level(step.event_id) * (
                step.weight / attack.total_step_weight
            )
        return expr

    def attack_richness_expression(self, attack: Attack | str) -> LinearExpression:
        """Linear expression equal to one attack's richness metric."""
        if isinstance(attack, str):
            attack = self.model.attack(attack)
        expr = LinearExpression()
        for step in attack.steps:
            expr = expr + self.richness_level(step.event_id) * (
                step.weight / attack.total_step_weight
            )
        return expr

    def cost_expression(self, dimension_weights: Mapping[str, float] | None = None) -> LinearExpression:
        """Linear expression of the scalarized deployment cost.

        With ``dimension_weights`` omitted every dimension weighs 1
        (plain cost sum); otherwise each dimension's spend is scaled by
        its weight, enabling e.g. storage-dominated cost minimization.
        """
        terms = []
        for monitor_id in self.model.monitors:
            cost = self.model.monitor_cost(monitor_id)
            scalar = cost.scalarize(dimension_weights)
            terms.append((self.selection[monitor_id], scalar))
        return LinearExpression.sum_of(terms)

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------

    def add_budget_constraints(self, budget: Budget) -> None:
        """Add one spending constraint per constrained budget dimension."""
        if not budget.dimensions:
            raise OptimizationError(
                "budget constrains no dimension; use Budget.of(...) with at least one limit"
            )
        for dimension in sorted(budget.dimensions):
            limit = budget.limit(dimension)
            assert limit is not None
            spend = LinearExpression.sum_of(
                (self.selection[m], self.model.monitor_cost(m).get(dimension))
                for m in self.model.monitors
            )
            self.milp.add_constraint(spend <= limit, name=f"budget[{dimension}]")

    def add_full_coverage_constraint(self, attack: Attack | str, min_sources: int = 1) -> None:
        """Require every *required* step of an attack to be evidenced.

        For each required event at least ``min_sources`` evidencing
        monitors must be selected (``min_sources > 1`` expresses a
        defense-in-depth / redundant-cover requirement).  Events with
        too few providers yield unsatisfiable rows, so infeasibility
        surfaces through the solver with the usual status instead of a
        special case.
        """
        if isinstance(attack, str):
            attack = self.model.attack(attack)
        if min_sources < 1:
            raise OptimizationError(f"min_sources must be >= 1, got {min_sources!r}")
        for event_id in sorted(attack.required_event_ids):
            providers = self.model.monitors_for_event(event_id)
            source_count = LinearExpression.sum_of(
                (self.selection[m], 1.0) for m in providers
            )
            self.milp.add_constraint(
                source_count >= float(min_sources),
                name=f"full_cov[{attack.attack_id}|{event_id}|{min_sources}]",
            )

    def add_cardinality_constraint(self, max_monitors: int) -> None:
        """Cap the number of selected monitors (operational headcount)."""
        if max_monitors < 0:
            raise OptimizationError(f"max_monitors must be >= 0, got {max_monitors!r}")
        total_selected = LinearExpression.sum_of(
            (var, 1.0) for var in self.selection.values()
        )
        self.milp.add_constraint(
            total_selected <= float(max_monitors), name="max_monitors"
        )

    def add_forced_selection(self, monitor_ids: frozenset[str] | set[str]) -> None:
        """Pin monitors as already deployed (incremental re-optimization)."""
        unknown = set(monitor_ids) - set(self.selection)
        if unknown:
            raise OptimizationError(f"cannot force unknown monitors: {sorted(unknown)}")
        for monitor_id in sorted(monitor_ids):
            self.milp.add_constraint(
                self.selection[monitor_id] >= 1.0, name=f"forced[{monitor_id}]"
            )

    def selected_ids(self, values: Mapping[str, float]) -> frozenset[str]:
        """Extract the chosen monitor ids from a solution's values."""
        return frozenset(
            monitor_id
            for monitor_id, var in self.selection.items()
            if values[var.name] > 0.5
        )
