"""Exhaustive enumeration oracle for small MILPs.

Enumerates every assignment of the integral variables (continuous
variables are optimized by LP at each leaf) and returns the true
optimum.  Exponential by construction — it refuses models with more than
:data:`MAX_INTEGER_VARIABLES` integral variables — and exists purely as
a correctness oracle: the property-based tests check that both real
backends agree with it on randomized small instances.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import SolverError
from repro.solver.lp import solve_lp
from repro.solver.model import MilpModel, Solution, SolutionStatus

__all__ = ["solve_by_enumeration", "MAX_INTEGER_VARIABLES"]

#: Refuse instances whose integral search space exceeds 2^20-ish leaves.
MAX_INTEGER_VARIABLES = 20


def solve_by_enumeration(model: MilpModel) -> Solution:
    """Brute-force the integral variables; LP-optimize the rest per leaf."""
    form = model.compile()
    integral_indices = np.flatnonzero(form.integrality)
    if integral_indices.size > MAX_INTEGER_VARIABLES:
        raise SolverError(
            f"enumeration oracle supports at most {MAX_INTEGER_VARIABLES} integer "
            f"variables, model {model.name!r} has {integral_indices.size}"
        )

    domains: list[range] = []
    for idx in integral_indices:
        lo, hi = form.lower[idx], form.upper[idx]
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise SolverError(
                "enumeration oracle requires finite bounds on every integer variable"
            )
        domains.append(range(int(np.ceil(lo)), int(np.floor(hi)) + 1))

    names = [v.name for v in model.variables]
    best_obj = float("inf")  # minimization convention
    best_x: np.ndarray | None = None
    leaves = 0

    for assignment in itertools.product(*domains):
        leaves += 1
        lower = form.lower.copy()
        upper = form.upper.copy()
        for idx, value in zip(integral_indices, assignment):
            lower[idx] = upper[idx] = float(value)
        result = solve_lp(form.c, form.A_ub, form.b_ub, form.A_eq, form.b_eq, lower, upper)
        if result.is_optimal and result.objective < best_obj:
            best_obj = result.objective
            best_x = result.x

    if best_x is None:
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "enumeration", leaves)
    x = best_x.copy()
    x[integral_indices] = np.round(x[integral_indices])
    return Solution(
        status=SolutionStatus.OPTIMAL,
        objective=form.objective_in_model_sense(best_obj),
        values={name: float(v) for name, v in zip(names, x)},
        backend="enumeration",
        nodes_explored=leaves,
    )
