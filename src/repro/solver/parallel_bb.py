"""Deterministic parallel branch & bound via frontier decomposition.

Parallel tree search is where silent nondeterminism creeps into exact
solvers: with a shared incumbent, *when* a worker learns a bound
changes *which* nodes it prunes, so two runs of the same instance can
report different (equally optimal) deployments, different node counts,
or — with tolerance interplay — different objectives.  This solver
buys parallelism without giving up the determinism contract:

1. **Split (serial).**  Run the exact serial best-first loop of
   :mod:`repro.solver.branch_and_bound` until the heap holds at least
   ``subtrees`` open nodes (a constant — never a function of the
   worker count) or the instance is solved outright.
2. **Explore (parallel).**  Each frontier node becomes one task: an
   independent branch-and-bound run over its ``(lower, upper)`` box,
   seeded with the phase-1 incumbent and nothing else.  Workers never
   exchange incumbents mid-flight — each subtree's result is a pure
   function of its task, so scheduling cannot influence it.  Tasks are
   dispatched in a **seeded order** (deterministic shuffle of the
   frontier) and fan out over
   :func:`~repro.runtime.parallel.parallel_map`, inheriting its retry,
   respawn, and serial-degrade machinery; with a
   :class:`~repro.runtime.pool.PersistentPool`, the compiled
   :class:`~repro.solver.model.StandardForm` is published once to
   shared memory and tasks carry a zero-copy handle instead of the
   matrices.
3. **Merge (commutative).**  The final incumbent is the minimum under
   the total order ``(objective, tiebreak index)`` over subtree
   results plus the phase-1 incumbent; node counts are summed.  Both
   reductions are order-independent, so *any* completion order — any
   worker count, any retry schedule, a worker killed and respawned
   mid-subtree — produces bit-identical results.

The contract, precisely: for a fixed instance and fixed ``subtrees``/
``seed``/``gap``/``max_nodes`` (and no ``time_limit``), objectives,
deployments, *and node accounting* are bit-identical at every worker
count.  Objectives and deployments also coincide with the serial
solver's on instances with a unique optimum (ties may break
differently — the decomposed search visits optima in a different
order, and both solvers keep the first they prove).  Node counts are
**not** comparable to the serial solver's: exhausting a frontier
subtree explores nodes the serial global best-first order would have
pruned.  The differential stress suite in ``tests/solver`` pins all of
this on 50 seeded instances.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import time
from collections.abc import Mapping, MutableMapping
from dataclasses import dataclass

import numpy as np
import scipy.sparse as _sp

from repro import obs
from repro.errors import UnboundedError
from repro.runtime import faults
from repro.runtime.parallel import parallel_map, spawn_seeds
from repro.runtime.pool import (
    PersistentPool,
    SharedArraysHandle,
    active_pool,
    attach_arrays,
)
from repro.solver.branch_and_bound import (
    DEFAULT_GAP,
    _most_fractional,
    _relax,
    _seed_incumbent,
    _snapped_if_feasible,
)
from repro.solver.lp import LpResult
from repro.solver.model import MilpModel, Solution, SolutionStatus, StandardForm
from repro.solver.sparse import is_sparse

__all__ = ["DEFAULT_SUBTREES", "solve_parallel_branch_and_bound"]

#: How many frontier subtrees phase 1 splits into.  A constant, and
#: deliberately *not* derived from the worker count: the decomposition
#: (and with it every result) must be invariant to how many workers
#: later explore it.
DEFAULT_SUBTREES = 8

#: Backend name stamped on solutions.
_BACKEND = "parallel-bb"


@dataclass(frozen=True)
class _FormHandle:
    """Zero-copy ticket for a published :class:`StandardForm`.

    ``csr_shapes`` records which constraint matrices were published as
    CSR triples (``<name>.data/.indices/.indptr`` entries in the array
    set) and their logical shapes; matrices absent from it were
    published as plain dense blocks.
    """

    arrays: SharedArraysHandle
    objective_constant: float
    maximize: bool
    csr_shapes: tuple[tuple[str, tuple[int, int]], ...] = ()


def _publish_form(form: StandardForm, pool: PersistentPool) -> _FormHandle:
    """Publish the compiled matrices once into ``pool``'s shared memory.

    A CSR matrix ships as its three flat arrays — the nnz-proportional
    payload — never as a densified block; at catalog scale that is the
    difference between a few megabytes and a few hundred.
    """
    arrays: dict[str, np.ndarray] = {
        "c": form.c,
        "b_ub": form.b_ub,
        "b_eq": form.b_eq,
        "lower": form.lower,
        "upper": form.upper,
        "integrality": form.integrality,
    }
    csr_shapes: list[tuple[str, tuple[int, int]]] = []
    for name, matrix in (("A_ub", form.A_ub), ("A_eq", form.A_eq)):
        if is_sparse(matrix):
            csr = matrix.tocsr()
            arrays[f"{name}.data"] = csr.data
            arrays[f"{name}.indices"] = csr.indices
            arrays[f"{name}.indptr"] = csr.indptr
            csr_shapes.append((name, (int(csr.shape[0]), int(csr.shape[1]))))
        else:
            arrays[name] = matrix
    handle = pool.share(arrays)
    return _FormHandle(
        arrays=handle,
        objective_constant=form.objective_constant,
        maximize=form.maximize,
        csr_shapes=tuple(csr_shapes),
    )


#: Per-process reconstructed forms, keyed by segment: many subtree
#: tasks, one attach.
_FORM_CACHE: dict[str, StandardForm] = {}


def _attach_form(handle: _FormHandle) -> StandardForm:
    cached = _FORM_CACHE.get(handle.arrays.segment)
    if cached is not None:
        return cached
    arrays = attach_arrays(handle.arrays)
    matrices: dict[str, np.ndarray | _sp.csr_matrix] = {}
    for name, shape in handle.csr_shapes:
        # Rebuild CSR over the read-only shared views without copying:
        # solvers only ever read the matrices, and the uniform index
        # dtype from compile keeps scipy from unifying (= copying).
        csr = _sp.csr_matrix(
            (
                arrays[f"{name}.data"],
                arrays[f"{name}.indices"],
                arrays[f"{name}.indptr"],
            ),
            shape=shape,
            copy=False,
        )
        csr.has_sorted_indices = True
        csr.has_canonical_format = True
        matrices[name] = csr
    form = StandardForm(
        c=arrays["c"],
        A_ub=matrices.get("A_ub", arrays.get("A_ub")),
        b_ub=arrays["b_ub"],
        A_eq=matrices.get("A_eq", arrays.get("A_eq")),
        b_eq=arrays["b_eq"],
        lower=arrays["lower"],
        upper=arrays["upper"],
        integrality=arrays["integrality"],
        objective_constant=handle.objective_constant,
        maximize=handle.maximize,
    )
    _FORM_CACHE[handle.arrays.segment] = form
    return form


@dataclass(frozen=True)
class _SubtreeTask:
    """One frontier subtree, self-contained for a worker process.

    ``form`` is either the :class:`StandardForm` itself (serial or
    pool-less dispatch; pickled per task) or a :class:`_FormHandle`
    (zero-copy).  ``subtree`` is the deterministic tiebreak index: the
    node's rank in the ``(bound, heap counter)``-sorted frontier,
    independent of the seeded dispatch order.
    """

    subtree: int
    form: StandardForm | _FormHandle
    bound: float
    lower: np.ndarray
    upper: np.ndarray
    incumbent_obj: float
    incumbent_x: np.ndarray | None
    bound_floor: float
    gap: float
    node_budget: int
    time_remaining: float | None
    plan: faults.FaultPlan | None


@dataclass(frozen=True)
class _SubtreeResult:
    """What one subtree exploration proved."""

    subtree: int
    objective: float  # minimization convention; +inf when no incumbent
    x: np.ndarray | None
    nodes: int
    exhausted: bool  # False when a node/time limit truncated the search


def _explore(
    form: StandardForm,
    integral_indices: np.ndarray,
    heap: list[tuple[float, int, np.ndarray, np.ndarray]],
    counter: "itertools.count[int]",
    incumbent_obj: float,
    incumbent_x: np.ndarray | None,
    *,
    gap: float,
    bound_floor: float,
    node_budget: int,
    deadline: float | None,
    lp_cache: MutableMapping[tuple[bytes, bytes], LpResult] | None,
    frontier_target: int | None,
    nodes: int = 0,
) -> tuple[float, np.ndarray | None, int, str]:
    """The serial best-first loop, reusable for splitting and subtrees.

    Mutates ``heap`` in place and returns ``(incumbent objective,
    incumbent point, nodes explored, why the loop stopped)`` with the
    stop reason one of ``"exhausted"`` (heap empty), ``"gap"`` (bound
    met the incumbent), ``"limit"`` (node budget or deadline), or
    ``"frontier"`` (the heap reached ``frontier_target`` open nodes).
    Node processing is line-for-line the serial solver's — same
    pruning margins, same branching rule, same snapped-incumbent
    acceptance — so a decomposed search proves the same optima.
    """
    while heap:
        if frontier_target is not None and len(heap) >= frontier_target:
            return incumbent_obj, incumbent_x, nodes, "frontier"
        bound, _, lower, upper = heapq.heappop(heap)
        if incumbent_x is not None:
            effective_bound = max(bound, bound_floor)
            relative_gap = (incumbent_obj - effective_bound) / max(1.0, abs(incumbent_obj))
            if relative_gap <= gap:
                if effective_bound > bound:
                    obs.counter("solver.bound_floor.closures").inc()
                return incumbent_obj, incumbent_x, nodes, "gap"

        nodes += 1
        if nodes > node_budget or (deadline is not None and time.monotonic() > deadline):
            return incumbent_obj, incumbent_x, nodes, "limit"

        relaxation = _relax(form, lower, upper, lp_cache)
        if not relaxation.is_optimal:
            continue  # infeasible subtree
        if relaxation.objective >= incumbent_obj - 1e-12:
            continue  # cannot improve

        assert relaxation.x is not None
        branch_var = _most_fractional(relaxation.x, integral_indices)
        if branch_var is None:
            snapped = _snapped_if_feasible(form, relaxation.x, integral_indices)
            if snapped is not None:
                objective = float(form.c @ snapped)
                if objective < incumbent_obj:
                    incumbent_obj = objective
                    incumbent_x = snapped
                continue
            values = np.clip(
                relaxation.x[integral_indices],
                lower[integral_indices],
                upper[integral_indices],
            )
            fractions = np.abs(values - np.round(values))
            worst = int(np.argmax(fractions))
            if fractions[worst] == 0.0:
                continue
            branch_var = int(integral_indices[worst])

        value = relaxation.x[branch_var]
        floor_val = np.floor(value)
        down_upper = upper.copy()
        down_upper[branch_var] = floor_val
        if lower[branch_var] <= floor_val:
            heapq.heappush(heap, (relaxation.objective, next(counter), lower.copy(), down_upper))
        up_lower = lower.copy()
        up_lower[branch_var] = floor_val + 1.0
        if up_lower[branch_var] <= upper[branch_var]:
            heapq.heappush(heap, (relaxation.objective, next(counter), up_lower, upper.copy()))

    return incumbent_obj, incumbent_x, nodes, "exhausted"


def _run_subtree(task: _SubtreeTask) -> _SubtreeResult:
    """Explore one frontier subtree to completion (worker entry point).

    Pure: the result depends only on the task, never on which process
    runs it or when — the keystone of the determinism contract.  The
    fault plan (when the ambient harness is active) rides inside the
    task, so injected worker deaths fire by attempt number exactly as
    in :mod:`repro.runtime.faults`.
    """
    if task.plan is not None:
        task.plan.fire(f"solver.parallel_bb.subtree[{task.subtree}]")
    form = task.form if isinstance(task.form, StandardForm) else _attach_form(task.form)
    integral_indices = np.flatnonzero(form.integrality)
    deadline = None if task.time_remaining is None else time.monotonic() + task.time_remaining
    counter = itertools.count()
    # Seed the heap with the node exactly as it sat in the phase-1
    # frontier — same bound, so the first gap check matches what the
    # serial loop would have computed on popping it.
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (task.bound, next(counter), task.lower.copy(), task.upper.copy()))
    with obs.span("solver.parallel_bb.subtree", subtree=task.subtree) as sp:
        objective, x, nodes, stopped = _explore(
            form,
            integral_indices,
            heap,
            counter,
            task.incumbent_obj,
            task.incumbent_x,
            gap=task.gap,
            bound_floor=task.bound_floor,
            node_budget=task.node_budget,
            deadline=deadline,
            lp_cache=None,
            frontier_target=None,
        )
        sp.set(nodes=nodes, stopped=stopped)
    return _SubtreeResult(task.subtree, objective, x, nodes, stopped in ("exhausted", "gap"))


def solve_parallel_branch_and_bound(
    model: MilpModel,
    *,
    workers: int | None = None,
    pool: PersistentPool | None = None,
    subtrees: int = DEFAULT_SUBTREES,
    seed: int = 0,
    time_limit: float | None = None,
    max_nodes: int = 1_000_000,
    gap: float = DEFAULT_GAP,
    warm_start: Mapping[str, float] | None = None,
    known_bound: float | None = None,
    lp_cache: MutableMapping[tuple[bytes, bytes], LpResult] | None = None,
) -> Solution:
    """Solve ``model`` exactly by frontier-decomposed branch and bound.

    Accepts the serial solver's controls plus:

    workers:
        Fan-out width for subtree exploration (resolved like
        :func:`~repro.runtime.parallel.resolve_workers`).  A pure
        throughput knob: results are bit-identical at any value.
    pool:
        Optional :class:`~repro.runtime.pool.PersistentPool`; when
        given, the compiled matrices are published once to shared
        memory and subtree tasks carry zero-copy handles.
    subtrees:
        Phase-1 frontier size (the decomposition grain).  Part of the
        instance key for determinism purposes: changing it legitimately
        changes node accounting, never optima.
    seed:
        Seeds the dispatch-order shuffle.  Results are bit-identical
        across seeds too (the merge is commutative); the seed exists so
        dispatch order is an explicit, replayable choice rather than an
        accident of heap layout.
    warm_start, known_bound, lp_cache:
        Exactly as in the serial solver; the cache serves phase 1 only
        (worker processes cannot share a parent-side dict).

    ``max_nodes`` bounds phase 1 and each subtree individually (a
    shared countdown would make accounting depend on completion order);
    a truncated subtree degrades the status to ``FEASIBLE`` just as a
    truncated serial search does.
    """
    with obs.span(
        "solver.parallel_bb", model=model.name, subtrees=subtrees, workers=workers or 0
    ) as sp:
        solution = _solve(
            model,
            workers,
            pool,
            max(1, int(subtrees)),
            seed,
            time_limit,
            max_nodes,
            gap,
            warm_start,
            known_bound,
            lp_cache,
        )
        sp.set(nodes=solution.nodes_explored)
    obs.counter("solver.solves").inc()
    obs.counter("solver.nodes").inc(solution.nodes_explored)
    obs.histogram("solver.solve_seconds").observe(sp.duration)
    return solution


def _solve(
    model: MilpModel,
    workers: int | None,
    pool: PersistentPool | None,
    subtrees: int,
    seed: int,
    time_limit: float | None,
    max_nodes: int,
    gap: float,
    warm_start: Mapping[str, float] | None,
    known_bound: float | None,
    lp_cache: MutableMapping[tuple[bytes, bytes], LpResult] | None,
) -> Solution:
    form = model.compile()
    names = [v.name for v in model.variables]
    integral_indices = np.flatnonzero(form.integrality)
    deadline = None if time_limit is None else time.monotonic() + time_limit
    pool = pool if pool is not None else active_pool()
    if pool is not None and pool.closed:
        pool = None
    if multiprocessing.parent_process() is not None:
        # Already inside a worker (e.g. a parallel budget sweep carrying
        # bb_workers): forking a second pool from a forked worker can
        # deadlock on locks copied mid-acquisition.  Subtrees run
        # in-process instead — results are bit-identical at any worker
        # count, so this is pure scheduling, never semantics.
        workers, pool = 1, None
        obs.counter("solver.parallel.nested_serial").inc()

    def make_solution(
        status: SolutionStatus, objective_min: float, x: np.ndarray | None, nodes: int
    ) -> Solution:
        values: dict[str, float] = {}
        if x is not None:
            rounded = x.copy()
            rounded[integral_indices] = np.round(rounded[integral_indices])
            values = {name: float(v) for name, v in zip(names, rounded)}
        objective = form.objective_in_model_sense(objective_min) if x is not None else float("nan")
        return Solution(
            status=status,
            objective=objective,
            values=values,
            backend=_BACKEND,
            nodes_explored=nodes,
        )

    root = _relax(form, form.lower, form.upper, lp_cache)
    if root.status == "infeasible":
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, _BACKEND, 1)
    if root.status == "unbounded":
        raise UnboundedError(f"model {model.name!r} has an unbounded LP relaxation")

    incumbent_x: np.ndarray | None = None
    incumbent_obj = float("inf")
    if warm_start is not None:
        incumbent_x, incumbent_obj = _seed_incumbent(model, form, names, warm_start)
    bound_floor = (
        form.minimized_from_model_sense(known_bound) if known_bound is not None else float("-inf")
    )

    # Phase 1: serial split to a worker-count-independent frontier.
    counter = itertools.count()
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (root.objective, next(counter), form.lower.copy(), form.upper.copy()))
    incumbent_obj, incumbent_x, split_nodes, stopped = _explore(
        form,
        integral_indices,
        heap,
        counter,
        incumbent_obj,
        incumbent_x,
        gap=gap,
        bound_floor=bound_floor,
        node_budget=max_nodes,
        deadline=deadline,
        lp_cache=lp_cache,
        frontier_target=subtrees,
    )
    obs.counter("solver.parallel.splits").inc(split_nodes)
    if stopped in ("exhausted", "gap"):
        if incumbent_x is not None:
            return make_solution(SolutionStatus.OPTIMAL, incumbent_obj, incumbent_x, split_nodes)
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, _BACKEND, split_nodes)
    if stopped == "limit":
        if incumbent_x is not None:
            return make_solution(SolutionStatus.FEASIBLE, incumbent_obj, incumbent_x, split_nodes)
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, _BACKEND, split_nodes)

    # Phase 2: one task per frontier node.  The tiebreak index is the
    # node's rank in (bound, heap counter) order — deterministic and
    # independent of the seeded dispatch shuffle below.
    frontier = sorted(heap, key=lambda node: (node[0], node[1]))
    form_ref: StandardForm | _FormHandle = form
    if pool is not None:
        form_ref = _publish_form(form, pool)
    plan = faults.active_plan()
    tasks = [
        _SubtreeTask(
            subtree=rank,
            form=form_ref,
            bound=bound,
            lower=lower,
            upper=upper,
            incumbent_obj=incumbent_obj,
            incumbent_x=incumbent_x,
            bound_floor=bound_floor,
            gap=gap,
            node_budget=max_nodes,
            time_remaining=(
                None if deadline is None else max(0.0, deadline - time.monotonic())
            ),
            plan=plan,
        )
        for rank, (bound, _, lower, upper) in enumerate(frontier)
    ]
    order = np.random.default_rng(spawn_seeds(seed, 1)[0]).permutation(len(tasks))
    dispatched = [tasks[int(i)] for i in order]
    obs.counter("solver.parallel.subtrees").inc(len(tasks))
    results: list[_SubtreeResult] = parallel_map(
        _run_subtree, dispatched, workers=workers, pool=pool
    )

    # Phase 3: commutative merge keyed on (objective, tiebreak index);
    # the phase-1 incumbent enters at index -1 so exact ties prefer it.
    best = (incumbent_obj, -1, incumbent_x)
    total_nodes = split_nodes
    exhausted = True
    for result in results:
        total_nodes += result.nodes
        exhausted = exhausted and result.exhausted
        if result.x is not None and (result.objective, result.subtree) < (best[0], best[1]):
            best = (result.objective, result.subtree, result.x)

    best_obj, _, best_x = best
    if best_x is None:
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, _BACKEND, total_nodes)
    status = SolutionStatus.OPTIMAL if exhausted else SolutionStatus.FEASIBLE
    return make_solution(status, best_obj, best_x, total_nodes)
