"""A from-scratch MILP substrate (expression DSL + exact solvers).

The paper's methodology requires an exact 0/1 integer-programming
solver.  This package provides one that is self-contained:

* an algebraic modeling layer (:mod:`repro.solver.expressions`,
  :mod:`repro.solver.model`) in the style of PuLP;
* a pure-Python **branch-and-bound** solver over scipy LP relaxations
  (:mod:`repro.solver.branch_and_bound`), plus a deterministic
  **parallel** variant (:mod:`repro.solver.parallel_bb`) that explores
  frontier subtrees across worker processes with bit-identical results
  at any worker count;
* a **HiGHS** backend via :func:`scipy.optimize.milp`
  (:mod:`repro.solver.scipy_backend`), the default for large instances;
* an exponential **enumeration oracle** used by the test suite
  (:mod:`repro.solver.enumerate`).

:func:`solve` dispatches by backend name.
"""

from repro.errors import SolverError
from repro.solver.branch_and_bound import solve_branch_and_bound
from repro.solver.enumerate import solve_by_enumeration
from repro.solver.fallback import (
    DEFAULT_CHAIN,
    BackendAttempt,
    FallbackOutcome,
    solve_with_fallback,
)
from repro.solver.expressions import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    Variable,
    VarKind,
)
from repro.solver.model import (
    MilpModel,
    ObjectiveSense,
    Solution,
    SolutionStatus,
    StandardForm,
)
from repro.solver.lpwriter import model_to_lp_string
from repro.solver.parallel_bb import solve_parallel_branch_and_bound
from repro.solver.presolve import (
    PresolveResult,
    PresolveStats,
    PresolveStatus,
    presolve,
    solve_presolved,
)
from repro.solver.scipy_backend import solve_scipy_milp
from repro.solver.session import SolveSession

__all__ = [
    "BackendAttempt",
    "Constraint",
    "ConstraintSense",
    "DEFAULT_CHAIN",
    "FallbackOutcome",
    "solve_with_fallback",
    "LinearExpression",
    "PresolveResult",
    "PresolveStats",
    "PresolveStatus",
    "SolveSession",
    "Variable",
    "VarKind",
    "MilpModel",
    "ObjectiveSense",
    "Solution",
    "SolutionStatus",
    "StandardForm",
    "presolve",
    "solve",
    "solve_branch_and_bound",
    "solve_by_enumeration",
    "solve_parallel_branch_and_bound",
    "solve_presolved",
    "solve_scipy_milp",
    "model_to_lp_string",
    "BACKENDS",
]

#: Registered backend names accepted by :func:`solve`.
BACKENDS = ("scipy", "branch-and-bound", "parallel-bb", "enumeration", "fallback")


def solve(
    model: MilpModel,
    backend: str = "scipy",
    *,
    time_limit: float | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    presolve: bool = False,
    bb_workers: int | None = None,
) -> Solution:
    """Solve ``model`` with the named backend.

    Parameters
    ----------
    model:
        The MILP to solve.
    backend:
        One of :data:`BACKENDS`.  ``"scipy"`` (HiGHS) is the default and
        the right choice for anything non-trivial; ``"branch-and-bound"``
        is the dependency-free exact solver; ``"enumeration"`` is the
        test oracle and refuses more than ~20 integer variables;
        ``"fallback"`` tries the default chain (scipy, then
        branch-and-bound) and answers with the first viable backend —
        the :class:`Solution.backend` field records which one.
    time_limit:
        Wall-clock limit in seconds (ignored by the enumeration oracle).
    max_nodes:
        Branch-and-bound node cap (HiGHS node limit on the scipy
        backend; ignored by the enumeration oracle).  When it triggers,
        the best incumbent degrades to status ``FEASIBLE``.
    gap:
        Relative optimality gap at which an incumbent is accepted as
        optimal (ignored by the enumeration oracle).
    presolve:
        Run the exact reduction pipeline (:mod:`repro.solver.presolve`)
        first and solve the reduced instance; the solution is lifted
        back to the original variable space.
    bb_workers:
        Worker count for the parallel branch-and-bound.  Routes the
        ``"parallel-bb"`` backend's fan-out, and upgrades
        ``"branch-and-bound"`` (including its turn in the fallback
        chain) to the parallel solver when greater than 1.  Results are
        bit-identical at any value — this is a throughput knob, never a
        semantics knob.
    """
    if presolve:
        from repro.solver.presolve import solve_presolved as _solve_presolved

        return _solve_presolved(
            model,
            backend,
            time_limit=time_limit,
            max_nodes=max_nodes,
            gap=gap,
            bb_workers=bb_workers,
        )
    if backend == "scipy":
        return solve_scipy_milp(model, time_limit=time_limit, max_nodes=max_nodes, gap=gap)
    if backend in ("branch-and-bound", "parallel-bb"):
        kwargs: dict[str, float] = {}
        if max_nodes is not None:
            kwargs["max_nodes"] = max_nodes
        if gap is not None:
            kwargs["gap"] = gap
        if backend == "parallel-bb" or (bb_workers is not None and bb_workers > 1):
            return solve_parallel_branch_and_bound(
                model, time_limit=time_limit, workers=bb_workers, **kwargs
            )
        return solve_branch_and_bound(model, time_limit=time_limit, **kwargs)
    if backend == "enumeration":
        return solve_by_enumeration(model)
    if backend == "fallback":
        return solve_with_fallback(
            model,
            DEFAULT_CHAIN,
            time_limit=time_limit,
            max_nodes=max_nodes,
            gap=gap,
            bb_workers=bb_workers,
        ).solution
    raise SolverError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
