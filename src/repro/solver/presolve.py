"""Exact presolve: shrink a MILP without changing what it answers.

Budget sweeps, exact frontiers, and per-scenario robust solves hammer
the solvers with *families* of closely related instances; most of the
work in each instance is structure the solver rediscovers from scratch.
:func:`presolve` runs a reduction fixpoint over a compiled
:class:`~repro.solver.model.MilpModel` and returns a smaller model plus
the bookkeeping needed to lift any solution of the reduced model back to
the original variable space **exactly**:

* **forced fixings** — integer variables whose bounds collapse under
  constraint implication (a monitor whose cost alone exceeds a budget
  dimension, a selection forced by a ``>=`` row);
* **singleton rows** — one-variable constraints become bounds and the
  row disappears;
* **redundant rows** — rows satisfied by the variable bounds alone are
  dropped;
* **duplicate rows** — rows with identical coefficients merge into the
  tightest right-hand side;
* **dominated columns** — a binary column k is fixed to 0 when another
  binary column j is at least as useful in every row and no cheaper
  optimum needs k (the "coverage subset at >= cost" monitor pattern;
  the row-wise test below is the exact, conservative generalization).

Every reduction preserves the optimal objective value; fixings preserve
the full feasible set except dominated-column elimination, which
preserves at least one optimal solution (the proof is the classic swap
argument, spelled out at :func:`_eliminate_dominated_columns`).
Solutions of the reduced model lift back through
:meth:`PresolveResult.lift_solution` with the objective untouched — the
reduced model's objective carries the fixed variables' contribution in
its constant term, so backends already report the full-model objective.

The reducer works on **CSR matrices internally**, whatever compile
flavor produced the input: one arithmetic pipeline means
sparse-compiled and dense-compiled instances presolve identically by
construction.  The dominated-column rule has two engines over the same
mathematical conditions — a dense vectorized one for small candidate
sets, and a bitset-prefiltered sparse one that stays tractable at
catalog scale (thousands of monitor columns), which is exactly where
the dense engine used to hit :data:`DOMINANCE_WORK_LIMIT` and give up.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as _sp

from repro import obs
from repro.solver.expressions import ConstraintSense, LinearExpression, VarKind
from repro.solver.model import (
    MilpModel,
    ObjectiveSense,
    Solution,
    SolutionStatus,
    StandardForm,
)
from repro.solver.sparse import is_sparse, pack_bitset

__all__ = [
    "PresolveStatus",
    "PresolveStats",
    "PresolveResult",
    "presolve",
    "solve_presolved",
]

#: Feasibility tolerance for activity-bound reasoning.
FEASIBILITY_TOLERANCE = 1e-9

#: Tolerance when snapping implied integer bounds to integers.
INTEGRALITY_TOLERANCE = 1e-6

#: Dense pairwise dominance checking is O(binaries^2 * rows); above
#: this many elementary comparisons the rule switches to the sparse
#: bitset engine instead of materializing candidate submatrices.
DOMINANCE_WORK_LIMIT = 50_000_000

#: The sparse engine's prefilter is O(binaries^2 * rows/64) uint64
#: word operations; above this the rule is skipped outright (counted,
#: never silent).  At 2000 monitors / 4000 rows the prefilter is ~3e8
#: word ops — well inside; a 20k-column pathology is not.
SPARSE_DOMINANCE_WORK_LIMIT = 4_000_000_000


class PresolveStatus(str, enum.Enum):
    """Terminal state of a presolve pass."""

    REDUCED = "reduced"  # a (possibly smaller) model remains to be solved
    SOLVED = "solved"  # every variable was fixed; the solution is known
    INFEASIBLE = "infeasible"  # bound/activity reasoning proved infeasibility


@dataclass
class PresolveStats:
    """What one presolve pass removed, for ratios and obs counters."""

    columns_before: int = 0
    columns_after: int = 0
    rows_before: int = 0
    rows_after: int = 0
    rounds: int = 0
    forced_fixings: int = 0
    dominated_columns: int = 0
    duplicate_rows: int = 0
    redundant_rows: int = 0
    singleton_rows: int = 0
    dominance_skipped: bool = False
    sparse_dominance_rounds: int = 0

    @property
    def columns_removed(self) -> int:
        return self.columns_before - self.columns_after

    @property
    def rows_removed(self) -> int:
        return self.rows_before - self.rows_after

    def to_dict(self) -> dict[str, int]:
        return {
            "columns_before": self.columns_before,
            "columns_after": self.columns_after,
            "rows_before": self.rows_before,
            "rows_after": self.rows_after,
            "rounds": self.rounds,
            "forced_fixings": self.forced_fixings,
            "dominated_columns": self.dominated_columns,
            "duplicate_rows": self.duplicate_rows,
            "redundant_rows": self.redundant_rows,
            "singleton_rows": self.singleton_rows,
            "dominance_skipped": int(self.dominance_skipped),
            "sparse_dominance_rounds": self.sparse_dominance_rounds,
        }


@dataclass
class PresolveResult:
    """A reduced model plus the uncrush map back to the original space."""

    original: MilpModel
    status: PresolveStatus
    reduced: MilpModel | None
    fixed: dict[str, float]
    stats: PresolveStats
    form: StandardForm = field(repr=False, default=None)  # original compiled form

    def lift(self, values: Mapping[str, float]) -> dict[str, float]:
        """Reduced-space values + fixed values -> full original-space values."""
        merged = dict(self.fixed)
        merged.update(values)
        return {v.name: merged[v.name] for v in self.original.variables}

    def lift_solution(self, solution: Solution) -> Solution:
        """Lift a reduced-model :class:`Solution` to the original space.

        The objective is carried over unchanged: the reduced model's
        objective constant already includes the fixed variables'
        contribution, so backends report the full-model value.
        """
        if not solution.values:
            return solution
        return Solution(
            status=solution.status,
            objective=solution.objective,
            values=self.lift(solution.values),
            backend=solution.backend,
            nodes_explored=solution.nodes_explored,
        )


def _publish_counters(stats: PresolveStats) -> None:
    obs.counter("presolve.runs").inc()
    obs.counter("presolve.columns_before").inc(stats.columns_before)
    obs.counter("presolve.columns_after").inc(stats.columns_after)
    obs.counter("presolve.rows_before").inc(stats.rows_before)
    obs.counter("presolve.rows_after").inc(stats.rows_after)
    obs.counter("presolve.forced_fixings").inc(stats.forced_fixings)
    obs.counter("presolve.dominated_columns").inc(stats.dominated_columns)
    obs.counter("presolve.duplicate_rows").inc(stats.duplicate_rows)
    obs.counter("presolve.redundant_rows").inc(stats.redundant_rows)
    obs.counter("presolve.singleton_rows").inc(stats.singleton_rows)


class _Infeasible(Exception):
    """Internal signal: activity reasoning proved the model infeasible."""


def _pair_dominates(
    rows_j: np.ndarray,
    vals_j: np.ndarray,
    rows_k: np.ndarray,
    vals_k: np.ndarray,
    max_act: np.ndarray,
    b: np.ndarray,
    tol: float,
) -> tuple[bool, bool]:
    """Exact dominance check of column j over column k by support merge.

    Walks the two sorted supports together; rows outside both supports
    compare ``0 <= 0`` and are skipped by construction.  Returns
    ``(dominates, columns_exactly_equal)``; the equality flag feeds the
    caller's tie-breaking (costs are compared there).
    """
    i = t = 0
    nj, nk = rows_j.size, rows_k.size
    equal = nj == nk
    while i < nj or t < nk:
        if t >= nk or (i < nj and rows_j[i] < rows_k[t]):
            r, aj, ak = int(rows_j[i]), float(vals_j[i]), 0.0
            i += 1
            equal = False
        elif i >= nj or rows_k[t] < rows_j[i]:
            r, aj, ak = int(rows_k[t]), 0.0, float(vals_k[t])
            t += 1
            equal = False
        else:
            r, aj, ak = int(rows_j[i]), float(vals_j[i]), float(vals_k[t])
            i += 1
            t += 1
            if abs(aj - ak) > tol:
                equal = False
        if aj > ak + tol:
            return False, False  # condition 2 fails on row r
        if ak < 0 and max_act[r] + min(aj, 0.0) > b[r] + tol:
            return False, False  # condition 4 fails: k's help irreplaceable
    return True, equal


def _as_csr(matrix: np.ndarray | _sp.spmatrix, n: int) -> _sp.csr_matrix:
    """``matrix`` as canonical CSR, whatever compile flavor produced it."""
    if is_sparse(matrix):
        csr = matrix.tocsr()
        csr.sort_indices()
        return csr
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.size == 0:
        return _sp.csr_matrix((dense.shape[0], n), dtype=np.float64)
    return _sp.csr_matrix(dense)


class _Reducer:
    """Mutable working state of one presolve pass (minimization form).

    The coefficient matrices are held as canonical CSR regardless of
    how the model was compiled: every reduction then runs the exact
    same floating-point pipeline for both compile flavors, which is
    what makes sparse-vs-dense presolve identity hold by construction.
    Reductions never touch coefficients — only rhs vectors, bounds,
    and the active-row masks — so the matrices (and their cached sign
    splits) are immutable for the reducer's whole lifetime.
    """

    def __init__(self, model: MilpModel):
        self.model = model
        self.form = model.compile()
        form = self.form
        n = form.num_variables
        self.c = form.c.copy()
        self.A_ub = _as_csr(form.A_ub, n)
        self.b_ub = form.b_ub.copy()
        self.A_eq = _as_csr(form.A_eq, n)
        self.b_eq = form.b_eq.copy()
        self.lower = form.lower.copy()
        self.upper = form.upper.copy()
        self.integral = form.integrality.copy()
        self.active_ub = np.ones(len(self.b_ub), dtype=bool)
        self.active_eq = np.ones(len(self.b_eq), dtype=bool)
        # Sign splits of the coefficient matrices, shared by every
        # activity computation.  ``minimum(0)`` equals the historical
        # ``A - maximum(A, 0)`` cell for cell, without densifying.
        self._pos_ub = self.A_ub.maximum(0.0)
        self._neg_ub = self.A_ub.minimum(0.0)
        self._pos_eq = self.A_eq.maximum(0.0)
        self._neg_eq = self.A_eq.minimum(0.0)
        self.stats = PresolveStats(
            columns_before=n,
            rows_before=len(self.b_ub) + len(self.b_eq),
        )
        # Snap integer bounds onto the lattice up front.
        with np.errstate(invalid="ignore"):
            # ``+ 0.0`` normalizes the -0.0 that ceil(-epsilon) produces.
            self.lower[self.integral] = (
                np.ceil(self.lower[self.integral] - INTEGRALITY_TOLERANCE) + 0.0
            )
            self.upper[self.integral] = (
                np.floor(self.upper[self.integral] + INTEGRALITY_TOLERANCE) + 0.0
            )
        if np.any(self.lower > self.upper):
            raise _Infeasible

    # -- helpers -----------------------------------------------------------

    @property
    def fixed_mask(self) -> np.ndarray:
        return self.lower == self.upper

    def _activity_bounds_ub(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Min/max row activity of the selected ub rows under current bounds.

        Computed as full-matrix CSR matvecs over the cached sign splits
        and then sliced: a matvec only *reads* the matrix and touches
        only stored nonzeros, which beats materializing a row subset.
        """
        min_act = self._pos_ub @ self.lower + self._neg_ub @ self.upper
        max_act = self._pos_ub @ self.upper + self._neg_ub @ self.lower
        return min_act[rows], max_act[rows]

    def _activity_bounds_eq(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Min/max row activity of the selected eq rows under current bounds."""
        min_act = self._pos_eq @ self.lower + self._neg_eq @ self.upper
        max_act = self._pos_eq @ self.upper + self._neg_eq @ self.lower
        return min_act[rows], max_act[rows]

    def _tighten(self, j: int, *, new_lower: float | None = None, new_upper: float | None = None) -> bool:
        """Apply an implied bound; returns True when it changed anything."""
        changed = False
        if new_upper is not None:
            if self.integral[j]:
                new_upper = math.floor(new_upper + INTEGRALITY_TOLERANCE)
            if new_upper < self.upper[j] - FEASIBILITY_TOLERANCE:
                self.upper[j] = new_upper
                changed = True
        if new_lower is not None:
            if self.integral[j]:
                new_lower = math.ceil(new_lower - INTEGRALITY_TOLERANCE)
            if new_lower > self.lower[j] + FEASIBILITY_TOLERANCE:
                self.lower[j] = new_lower
                changed = True
        if self.lower[j] > self.upper[j]:
            raise _Infeasible
        return changed

    # -- reduction rules ---------------------------------------------------

    def drop_redundant_and_check(self) -> bool:
        """Remove always-satisfied rows; raise on provably violated ones."""
        changed = False
        tol = FEASIBILITY_TOLERANCE
        if self.active_ub.any():
            idx = np.flatnonzero(self.active_ub)
            min_act, max_act = self._activity_bounds_ub(idx)
            if np.any(min_act > self.b_ub[idx] + tol):
                raise _Infeasible
            redundant = max_act <= self.b_ub[idx] + tol
            if redundant.any():
                self.active_ub[idx[redundant]] = False
                self.stats.redundant_rows += int(redundant.sum())
                changed = True
        if self.active_eq.any():
            idx = np.flatnonzero(self.active_eq)
            min_act, max_act = self._activity_bounds_eq(idx)
            rhs = self.b_eq[idx]
            if np.any(min_act > rhs + tol) or np.any(max_act < rhs - tol):
                raise _Infeasible
            pinned = max_act - min_act <= tol  # constant row equal to rhs
            if pinned.any():
                self.active_eq[idx[pinned]] = False
                self.stats.redundant_rows += int(pinned.sum())
                changed = True
        return changed

    def propagate_bounds(self) -> bool:
        """Implied-bound tightening; integers may collapse to fixings.

        Continuous variables are tightened only through singleton rows
        (where the row *is* the bound, so the row is dropped too);
        integral variables tighten under every row.  Both directions
        preserve the feasible set exactly.
        """
        changed = False
        fixed_before = int(self.fixed_mask.sum())
        ub_indptr, ub_indices, ub_data = (
            self.A_ub.indptr,
            self.A_ub.indices,
            self.A_ub.data,
        )
        for i in np.flatnonzero(self.active_ub):
            cols = ub_indices[ub_indptr[i] : ub_indptr[i + 1]]
            vals = ub_data[ub_indptr[i] : ub_indptr[i + 1]]
            if cols.size == 0:
                if -FEASIBILITY_TOLERANCE > self.b_ub[i]:
                    raise _Infeasible
                self.active_ub[i] = False
                continue
            pos = np.maximum(vals, 0.0)
            neg = np.minimum(vals, 0.0)
            min_act = float(pos @ self.lower[cols] + neg @ self.upper[cols])
            unfixed = [t for t in range(cols.size) if self.lower[cols[t]] != self.upper[cols[t]]]
            if len(unfixed) == 1:
                t = unfixed[0]
                j = int(cols[t])
                a = float(vals[t])
                min_others = min_act - (a * self.lower[j] if a > 0 else a * self.upper[j])
                bound = (self.b_ub[i] - min_others) / a
                if a > 0:
                    changed |= self._tighten(j, new_upper=bound)
                else:
                    changed |= self._tighten(j, new_lower=bound)
                self.active_ub[i] = False
                self.stats.singleton_rows += 1
                changed = True
                continue
            for t in unfixed:
                j = int(cols[t])
                if not self.integral[j]:
                    continue
                a = float(vals[t])
                min_others = min_act - (a * self.lower[j] if a > 0 else a * self.upper[j])
                bound = (self.b_ub[i] - min_others) / a
                if a > 0:
                    changed |= self._tighten(j, new_upper=bound)
                else:
                    changed |= self._tighten(j, new_lower=bound)
        eq_indptr, eq_indices, eq_data = (
            self.A_eq.indptr,
            self.A_eq.indices,
            self.A_eq.data,
        )
        for i in np.flatnonzero(self.active_eq):
            cols = eq_indices[eq_indptr[i] : eq_indptr[i + 1]]
            vals = eq_data[eq_indptr[i] : eq_indptr[i + 1]]
            unfixed = [t for t in range(cols.size) if self.lower[cols[t]] != self.upper[cols[t]]]
            if len(unfixed) == 1:
                t = unfixed[0]
                j = int(cols[t])
                a = float(vals[t])
                others = float(vals @ self.lower[cols]) - a * self.lower[j]
                value = (self.b_eq[i] - others) / a
                if self.integral[j] and abs(value - round(value)) > INTEGRALITY_TOLERANCE:
                    raise _Infeasible
                self._tighten(j, new_lower=value, new_upper=value)
                if self.lower[j] != self.upper[j]:
                    # Bounds already excluded the forced value.
                    if not (
                        self.lower[j] - FEASIBILITY_TOLERANCE
                        <= value
                        <= self.upper[j] + FEASIBILITY_TOLERANCE
                    ):
                        raise _Infeasible
                    self.lower[j] = self.upper[j] = (
                        round(value) if self.integral[j] else value
                    )
                self.active_eq[i] = False
                self.stats.singleton_rows += 1
                changed = True
        self.stats.forced_fixings += int(self.fixed_mask.sum()) - fixed_before
        return changed

    def merge_duplicate_rows(self) -> bool:
        """Collapse ub rows with identical unfixed coefficients."""
        idx = np.flatnonzero(self.active_ub)
        if idx.size < 2:
            return False
        unfixed = ~self.fixed_mask
        fixed_values = np.where(self.fixed_mask, self.lower, 0.0)
        # fixed_values is zero on unfixed columns, so the full matvec
        # equals the historical fixed-column-sliced product.
        eff_b = self.b_ub[idx] - self.A_ub[idx] @ fixed_values
        indptr, indices, data = self.A_ub.indptr, self.A_ub.indices, self.A_ub.data
        groups: dict[tuple[bytes, bytes], int] = {}
        changed = False
        for pos, i in enumerate(idx):
            cols = indices[indptr[i] : indptr[i + 1]]
            vals = data[indptr[i] : indptr[i + 1]]
            sel = unfixed[cols]
            # (sorted columns, values) restricted to unfixed variables
            # identifies the dense restriction exactly — stored rows
            # carry no explicit zeros.
            key = (cols[sel].tobytes(), vals[sel].tobytes())
            keep = groups.get(key)
            if keep is None:
                groups[key] = pos
                continue
            # Same linear part: keep the tighter effective rhs on the
            # first row, drop the duplicate.
            keep_i = idx[keep]
            if eff_b[pos] < eff_b[keep]:
                shift = self.b_ub[keep_i] - eff_b[keep]  # fixed contribution
                self.b_ub[keep_i] = eff_b[pos] + shift
                eff_b[keep] = eff_b[pos]
            self.active_ub[i] = False
            self.stats.duplicate_rows += 1
            changed = True
        return changed

    def eliminate_dominated_columns(self) -> bool:
        """Fix dominated binary columns to 0 (exact, never heuristic).

        Binary column ``k`` is dominated by binary column ``j`` when
        (minimization convention, LE rows):

        1. ``c_j <= c_k`` — selecting j never costs more;
        2. ``A[r, j] <= A[r, k]`` for every active row — j consumes no
           more slack anywhere and helps at least as much where
           coefficients are negative;
        3. ``c_k >= 0`` — dropping k alone never improves the objective
           it abandons (covers the case where j is *already* selected);
        4. for every row where ``A[r, k] < 0`` (rows k "helps"), the row
           stays satisfiable with j selected and k dropped:
           ``max-activity excluding j and k, plus A[r, j] <= b_r``.

        Given any feasible solution with ``x_k = 1``: if ``x_j = 0``,
        swapping k for j keeps every row (2) and the objective (1); if
        ``x_j = 1``, dropping k keeps rows with ``A[r,k] >= 0`` (slack
        only grows), keeps rows with ``A[r,k] < 0`` by (4), and the
        objective by (3).  Hence at least one optimum has ``x_k = 0``.
        Exact ties are broken by column order so mutual domination
        removes exactly one of the pair.  Equality constraints opt a
        column out of both roles — the swap argument needs slack.

        Two engines implement these conditions.  Small candidate sets
        take the dense vectorized engine (materializing the candidate
        submatrix); when that would exceed :data:`DOMINANCE_WORK_LIMIT`
        elementary comparisons — the regime where the rule previously
        just gave up — the sparse engine takes over: uint64 row-support
        bitsets prefilter (dominance forces ``pos(j) ⊆ pos(k)`` and
        ``neg(k) ⊆ neg(j)``), and only prefilter survivors pay an exact
        two-pointer merge over their supports.  This is the reduction
        that actually collapses thousands-of-monitor catalogs: a
        monitor whose evidence is covered by a no-more-expensive rival
        is proven droppable before the solver ever branches.
        """
        unfixed = ~self.fixed_mask
        binary = (
            self.integral
            & (self.lower == 0.0)
            & (self.upper == 1.0)
            & unfixed
        )
        if self.active_eq.any():
            eq_sub = self.A_eq[np.flatnonzero(self.active_eq)]
            binary[np.unique(eq_sub.indices)] = False
        cand = np.flatnonzero(binary)
        if cand.size < 2:
            return False
        rows = np.flatnonzero(self.active_ub)
        if cand.size * cand.size * max(rows.size, 1) <= DOMINANCE_WORK_LIMIT:
            return self._dominated_dense(cand, rows)
        words = max(1, -(-max(rows.size, 1) // 64))
        if cand.size * cand.size * words > SPARSE_DOMINANCE_WORK_LIMIT:
            if not self.stats.dominance_skipped:
                self.stats.dominance_skipped = True
                obs.counter("presolve.dominance_skipped").inc()
            return False
        self.stats.sparse_dominance_rounds += 1
        obs.counter("presolve.dominance_sparse_rounds").inc()
        return self._dominated_sparse(cand, rows)

    def _dominated_dense(self, cand: np.ndarray, rows: np.ndarray) -> bool:
        """Vectorized dominance over a materialized candidate submatrix."""
        tol = 1e-12
        M = (
            np.asarray(self.A_ub[rows][:, cand].todense())
            if rows.size
            else np.empty((0, cand.size))
        )
        _, max_act = self._activity_bounds_ub(rows) if rows.size else (None, np.empty(0))
        b = self.b_ub[rows]
        c = self.c[cand]
        maxpos = np.maximum(M, 0.0)  # binary columns: max contribution
        alive = np.ones(cand.size, dtype=bool)
        changed = False
        for jj in range(cand.size):
            if not alive[jj]:
                continue
            col_j = M[:, jj]
            cond_rows = np.all(col_j[:, None] <= M + tol, axis=0)
            cond_c = (c[jj] <= c + tol) & (c >= -tol)
            # Rows where k helps must survive "j in, k out".
            excl = max_act[:, None] - maxpos[:, jj][:, None] - maxpos + col_j[:, None]
            cond_drop = np.where(M < 0, excl <= b[:, None] + tol, True).all(axis=0)
            equal = np.all(np.abs(M - col_j[:, None]) <= tol, axis=0) & (
                np.abs(c - c[jj]) <= tol
            )
            dominated = cond_rows & cond_c & cond_drop & alive
            dominated[jj] = False
            # Break exact ties by column order: only the later column drops.
            dominated &= ~equal | (np.arange(cand.size) > jj)
            for kk in np.flatnonzero(dominated):
                self.upper[cand[kk]] = 0.0
                alive[kk] = False
                self.stats.dominated_columns += 1
                changed = True
        return changed

    def _dominated_sparse(self, cand: np.ndarray, rows: np.ndarray) -> bool:
        """Bitset-prefiltered dominance for catalog-scale candidate sets.

        Implements the same four conditions as the dense engine, in the
        same ``jj``-ascending order with the same alive-mask semantics,
        so both engines fix the identical set of columns.  Condition 2
        over *all* rows is equivalent to the two-pointer merge over the
        union of supports (rows outside both supports compare 0 <= 0),
        and condition 4's exclusion term collapses to
        ``max_act[r] + min(A[r,j], 0) <= b[r]`` on rows where k helps,
        because ``A[r,k] < 0`` zeroes k's max-contribution term.
        """
        tol = 1e-12
        sub = self.A_ub[rows][:, cand].tocsc() if rows.size else _sp.csc_matrix((0, cand.size))
        sub.sort_indices()
        _, max_act = self._activity_bounds_ub(rows) if rows.size else (None, np.empty(0))
        b = self.b_ub[rows]
        c = self.c[cand]
        col_rows: list[np.ndarray] = []
        col_vals: list[np.ndarray] = []
        for kk in range(cand.size):
            s, e = sub.indptr[kk], sub.indptr[kk + 1]
            col_rows.append(sub.indices[s:e])
            col_vals.append(sub.data[s:e])
        neg_bits = pack_bitset(
            [r[v < 0] for r, v in zip(col_rows, col_vals)], max(rows.size, 1)
        )
        pos_bits = pack_bitset(
            [r[v > 0] for r, v in zip(col_rows, col_vals)], max(rows.size, 1)
        )
        alive = np.ones(cand.size, dtype=bool)
        changed = False
        for jj in range(cand.size):
            if not alive[jj]:
                continue
            # Prefilter: neg(k) ⊆ neg(j), pos(j) ⊆ pos(k), cost compatible.
            maybe = (
                ~np.any(neg_bits & ~neg_bits[jj], axis=1)
                & ~np.any(pos_bits[jj] & ~pos_bits, axis=1)
                & (c[jj] <= c + tol)
                & (c >= -tol)
                & alive
            )
            maybe[jj] = False
            for kk in np.flatnonzero(maybe):
                dominates, cols_equal = _pair_dominates(
                    col_rows[jj],
                    col_vals[jj],
                    col_rows[kk],
                    col_vals[kk],
                    max_act,
                    b,
                    tol,
                )
                if not dominates:
                    continue
                if cols_equal and abs(c[kk] - c[jj]) <= tol and kk < jj:
                    continue  # exact tie: only the later column drops
                self.upper[cand[kk]] = 0.0
                alive[kk] = False
                self.stats.dominated_columns += 1
                changed = True
        return changed

    # -- the fixpoint ------------------------------------------------------

    def run(self, max_rounds: int, eliminate_dominated: bool) -> None:
        for _ in range(max_rounds):
            self.stats.rounds += 1
            changed = self.drop_redundant_and_check()
            changed |= self.propagate_bounds()
            changed |= self.merge_duplicate_rows()
            if eliminate_dominated:
                changed |= self.eliminate_dominated_columns()
            if not changed:
                break

    # -- rebuild -----------------------------------------------------------

    def _row_names(self) -> tuple[list[str], list[str]]:
        """Original constraint names in compile() row order (ub, eq)."""
        ub_names: list[str] = []
        eq_names: list[str] = []
        for constraint in self.model.constraints:
            if constraint.sense is ConstraintSense.EQ:
                eq_names.append(constraint.name)
            else:
                ub_names.append(constraint.name)
        return ub_names, eq_names

    def build_result(self) -> PresolveResult:
        fixed_mask = self.fixed_mask
        fixed = {
            v.name: float(self.lower[v.index]) + 0.0  # normalize -0.0
            for v in self.model.variables
            if fixed_mask[v.index]
        }
        self.stats.columns_after = int((~fixed_mask).sum())
        self.stats.rows_after = int(self.active_ub.sum() + self.active_eq.sum())

        if self.stats.columns_after == 0:
            return PresolveResult(
                original=self.model,
                status=PresolveStatus.SOLVED,
                reduced=None,
                fixed=fixed,
                stats=self.stats,
                form=self.form,
            )

        maximize = self.model.sense is ObjectiveSense.MAXIMIZE
        c_model = -self.c if maximize else self.c
        reduced = MilpModel(f"{self.model.name}|presolved", self.model.sense)
        variables: dict[int, object] = {}
        for v in self.model.variables:
            j = v.index
            if fixed_mask[j]:
                continue
            if v.kind is VarKind.BINARY:
                variables[j] = reduced.binary(v.name)
            elif v.kind is VarKind.INTEGER:
                variables[j] = reduced.integer(v.name, float(self.lower[j]), float(self.upper[j]))
            else:
                variables[j] = reduced.continuous(
                    v.name, float(self.lower[j]), float(self.upper[j])
                )

        fixed_values = np.where(fixed_mask, self.lower, 0.0)
        constant = self.form.objective_constant + float(c_model @ fixed_values)
        terms = {
            variables[j]: float(c_model[j])
            for j in np.flatnonzero(~fixed_mask)
            if c_model[j] != 0.0
        }
        reduced.set_objective(LinearExpression(terms, constant))

        ub_names, eq_names = self._row_names()
        ub_indptr, ub_indices, ub_data = (
            self.A_ub.indptr,
            self.A_ub.indices,
            self.A_ub.data,
        )
        for i in np.flatnonzero(self.active_ub):
            cols = ub_indices[ub_indptr[i] : ub_indptr[i + 1]]
            vals = ub_data[ub_indptr[i] : ub_indptr[i + 1]]
            keep = [t for t in range(cols.size) if not fixed_mask[cols[t]]]
            rhs = float(self.b_ub[i] - vals @ fixed_values[cols])
            if not keep:
                if rhs < -FEASIBILITY_TOLERANCE:  # pragma: no cover - caught earlier
                    raise _Infeasible
                continue
            expr = LinearExpression.sum_of(
                (variables[int(cols[t])], float(vals[t])) for t in keep
            )
            reduced.add_constraint(expr <= rhs, name=ub_names[i] if i < len(ub_names) else "")
        eq_indptr, eq_indices, eq_data = (
            self.A_eq.indptr,
            self.A_eq.indices,
            self.A_eq.data,
        )
        for i in np.flatnonzero(self.active_eq):
            cols = eq_indices[eq_indptr[i] : eq_indptr[i + 1]]
            vals = eq_data[eq_indptr[i] : eq_indptr[i + 1]]
            keep = [t for t in range(cols.size) if not fixed_mask[cols[t]]]
            rhs = float(self.b_eq[i] - vals @ fixed_values[cols])
            if not keep:
                if abs(rhs) > FEASIBILITY_TOLERANCE:  # pragma: no cover - caught earlier
                    raise _Infeasible
                continue
            expr = LinearExpression.sum_of(
                (variables[int(cols[t])], float(vals[t])) for t in keep
            )
            reduced.add_constraint(expr == rhs, name=eq_names[i] if i < len(eq_names) else "")

        return PresolveResult(
            original=self.model,
            status=PresolveStatus.REDUCED,
            reduced=reduced,
            fixed=fixed,
            stats=self.stats,
            form=self.form,
        )


def presolve(
    model: MilpModel,
    *,
    max_rounds: int = 25,
    eliminate_dominated: bool = True,
) -> PresolveResult:
    """Run the reduction fixpoint over ``model``.

    Parameters
    ----------
    model:
        The MILP to reduce; never mutated.
    max_rounds:
        Fixpoint iteration cap (each round applies every rule once).
    eliminate_dominated:
        Whether to run the dominated-binary-column rule (the costliest
        reduction; see :meth:`_Reducer.eliminate_dominated_columns`).
    """
    with obs.span("solver.presolve", model=model.name) as sp:
        try:
            reducer = _Reducer(model)
            reducer.run(max_rounds, eliminate_dominated)
            result = reducer.build_result()
        except _Infeasible:
            stats = PresolveStats(
                columns_before=model.num_variables,
                rows_before=model.num_constraints,
                columns_after=0,
                rows_after=0,
            )
            obs.counter("presolve.infeasible").inc()
            _publish_counters(stats)
            sp.set(status="infeasible")
            return PresolveResult(
                original=model,
                status=PresolveStatus.INFEASIBLE,
                reduced=None,
                fixed={},
                stats=stats,
            )
        _publish_counters(result.stats)
        sp.set(
            status=result.status.value,
            columns_removed=result.stats.columns_removed,
            rows_removed=result.stats.rows_removed,
        )
    return result


def solve_presolved(
    model: MilpModel,
    backend: str = "scipy",
    *,
    time_limit: float | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    bb_workers: int | None = None,
) -> Solution:
    """One-shot presolve + solve + lift (no cross-solve warm state).

    The sweep/frontier/robust layers use :class:`~repro.solver.session.
    SolveSession` to also carry warm starts across a family; this
    helper is the stateless fallback used by parallel workers, where a
    shared session cannot travel across process boundaries.
    """
    from repro.solver import solve  # local import: repro.solver re-exports this module

    pre = presolve(model)
    if pre.status is PresolveStatus.INFEASIBLE:
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "presolve")
    if pre.status is PresolveStatus.SOLVED:
        values = pre.lift({})
        return Solution(
            SolutionStatus.OPTIMAL, model.objective_value(values), values, "presolve"
        )
    assert pre.reduced is not None
    solution = solve(
        pre.reduced,
        backend,
        time_limit=time_limit,
        max_nodes=max_nodes,
        gap=gap,
        bb_workers=bb_workers,
    )
    return pre.lift_solution(solution)
