"""LP relaxation solving on top of :func:`scipy.optimize.linprog`.

The branch-and-bound backend repeatedly solves the LP relaxation of a
:class:`~repro.solver.model.StandardForm` with per-node bound overrides;
this module isolates the scipy call and translates its status codes into
the substrate's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as _sp
from scipy.optimize import linprog

from repro.errors import SolverError

__all__ = ["LpResult", "solve_lp"]


@dataclass(frozen=True, slots=True)
class LpResult:
    """Result of one LP relaxation solve (minimization convention)."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    objective: float
    x: np.ndarray | None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_lp(
    c: np.ndarray,
    A_ub: np.ndarray | _sp.csr_matrix,
    b_ub: np.ndarray,
    A_eq: np.ndarray | _sp.csr_matrix,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> LpResult:
    """Minimize ``c @ x`` subject to the given rows and bounds.

    Uses the HiGHS dual simplex through scipy; the constraint matrices
    may be dense or CSR and are handed to ``linprog`` as-is (HiGHS
    consumes sparse input natively).  Row-block emptiness is judged by
    the rhs vectors, not ``A.size`` — for a sparse matrix ``.size`` is
    nnz, and an all-zero row must still reach the solver.  Raises
    :class:`~repro.errors.SolverError` only for unexpected backend
    statuses; infeasible and unbounded are regular outcomes reported in
    the result.
    """
    bounds = np.column_stack((lower, upper))
    result = linprog(
        c,
        A_ub=A_ub if b_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=A_eq if b_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 0:
        return LpResult("optimal", float(result.fun), np.asarray(result.x))
    if result.status == 2:
        return LpResult("infeasible", float("inf"), None)
    if result.status == 3:
        return LpResult("unbounded", float("-inf"), None)
    raise SolverError(f"linprog failed with status {result.status}: {result.message}")
