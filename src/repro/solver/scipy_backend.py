"""MILP backend on :func:`scipy.optimize.milp` (HiGHS branch-and-cut).

This is the production backend: HiGHS handles the case-study and
scalability instances in well under a second.  It shares the
:class:`~repro.solver.model.StandardForm` compilation with the pure-
Python branch-and-bound backend, so both see bit-identical problems.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro import obs
from repro.errors import SolverError, UnboundedError
from repro.solver.model import MilpModel, Solution, SolutionStatus

__all__ = ["solve_scipy_milp"]


def solve_scipy_milp(
    model: MilpModel,
    *,
    time_limit: float | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    dense: bool = False,
) -> Solution:
    """Solve ``model`` with HiGHS via scipy.

    ``time_limit`` maps to HiGHS's wall-clock limit and ``max_nodes`` to
    its node limit; when either triggers, the best incumbent (if any) is
    returned with status ``FEASIBLE``.  ``gap`` maps to HiGHS's relative
    MIP gap — an incumbent proven within the gap reports ``OPTIMAL``.
    ``dense`` compiles the constraint matrices densely instead of CSR —
    retained for differential testing; identical answers, and subject
    to the dense cell limit.
    """
    with obs.span("solver.scipy_milp", model=model.name) as sp:
        solution = _solve(model, time_limit, max_nodes, gap, sp, dense=dense)
    obs.counter("solver.solves").inc()
    obs.histogram("solver.solve_seconds").observe(sp.duration)
    return solution


def _solve(
    model: MilpModel,
    time_limit: float | None,
    max_nodes: int | None,
    gap: float | None,
    sp: obs.Span,
    dense: bool = False,
) -> Solution:
    form = model.compile(dense=dense)
    sp.set(variables=int(form.c.size), rows=int(len(form.b_ub) + len(form.b_eq)))
    # Emptiness by rhs length, not A.size: on a CSR matrix .size is the
    # nonzero count, and an all-zero row must still reach the solver.
    constraints = []
    if form.b_ub.size:
        constraints.append(LinearConstraint(form.A_ub, -np.inf, form.b_ub))
    if form.b_eq.size:
        constraints.append(LinearConstraint(form.A_eq, form.b_eq, form.b_eq))

    options: dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if max_nodes is not None:
        options["node_limit"] = int(max_nodes)
    if gap is not None:
        options["mip_rel_gap"] = float(gap)

    result = milp(
        c=form.c,
        constraints=constraints,
        bounds=Bounds(form.lower, form.upper),
        integrality=form.integrality.astype(int),
        options=options or None,
    )

    # scipy.optimize.milp status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 numerical trouble.
    if result.status == 2:
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "scipy-milp")
    if result.status == 3:
        raise UnboundedError(f"model {model.name!r} is unbounded")
    if result.x is None:
        if result.status == 1:
            return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "scipy-milp")
        raise SolverError(f"scipy milp failed with status {result.status}: {result.message}")

    x = np.asarray(result.x, dtype=float)
    x[form.integrality] = np.round(x[form.integrality])
    values = {v.name: float(x[v.index]) for v in model.variables}
    status = SolutionStatus.OPTIMAL if result.status == 0 else SolutionStatus.FEASIBLE
    return Solution(
        status=status,
        objective=form.objective_in_model_sense(float(form.c @ x)),
        values=values,
        backend="scipy-milp",
    )
