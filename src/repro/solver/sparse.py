"""CSR utilities shared by the sparse solver core.

The formulation-to-solution path (compile -> presolve -> LP relaxation
-> backend) stores constraint matrices as ``scipy.sparse`` CSR: on
catalog-scale instances the coefficient matrices are well under 1%
dense, so the dense ``O(rows x vars)`` standard form was both the
compile-time and the memory bottleneck.  This module keeps the small
amount of CSR plumbing in one place:

* :func:`csr_from_rows` assembles a canonical CSR matrix straight from
  per-constraint ``(cols, vals)`` row fragments — one ``concatenate``,
  no intermediate dense rows;
* :func:`matrix_nbytes` / :func:`dense_equivalent_nbytes` are the byte
  accounting behind the ``solver.matrix.nbytes`` gauge and the
  service cache's LRU-by-bytes sizing;
* :func:`matrices_equal` and :func:`digest_update` give the session
  layer exact equality and content digests without densifying;
* :func:`pack_bitset` builds uint64 row-support bitsets for the
  sparse dominated-column presolve rule.

Everything here treats matrices as immutable values: canonical form
(sorted indices, no explicit zeros, no duplicates) is established at
construction and never revisited.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

__all__ = [
    "csr_from_rows",
    "dense_equivalent_nbytes",
    "digest_update",
    "is_sparse",
    "matrices_equal",
    "matrix_nbytes",
    "pack_bitset",
    "to_dense",
]


def is_sparse(matrix: object) -> bool:
    """Whether ``matrix`` is a scipy sparse matrix/array."""
    return sp.issparse(matrix)


def csr_from_rows(
    rows: list[tuple[np.ndarray, np.ndarray]], num_columns: int
) -> sp.csr_matrix:
    """Assemble a canonical CSR matrix from ``(cols, vals)`` fragments.

    Each fragment must already be canonical for its row: ``cols``
    strictly increasing, ``vals`` free of explicit zeros (the compile
    row memo guarantees both).  Assembly is then pure concatenation —
    ``O(nnz + rows)`` — and the result needs no ``sum_duplicates`` /
    ``sort_indices`` pass.
    """
    if not rows:
        return sp.csr_matrix((0, num_columns), dtype=np.float64)
    # A uniform int32 index dtype matters: mixing int32 indices with an
    # int64 indptr makes scipy unify (and silently copy) on every
    # construction, including the zero-copy shared-memory reattach.
    indptr = np.zeros(len(rows) + 1, dtype=np.int32)
    np.cumsum([cols.size for cols, _ in rows], out=indptr[1:])
    if indptr[-1] == 0:
        return sp.csr_matrix((len(rows), num_columns), dtype=np.float64)
    indices = np.concatenate([cols.astype(np.int32, copy=False) for cols, _ in rows])
    data = np.concatenate([vals for _, vals in rows])
    matrix = sp.csr_matrix(
        (data, indices, indptr), shape=(len(rows), num_columns), copy=False
    )
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True
    return matrix


def to_dense(matrix: np.ndarray | sp.spmatrix) -> np.ndarray:
    """A dense ``float64`` view/copy of ``matrix``."""
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64)


def matrix_nbytes(matrix: np.ndarray | sp.spmatrix) -> int:
    """Actual payload bytes of a constraint matrix.

    CSR cost is ``data + indices + indptr`` — what the matrix really
    occupies — not the dense ``rows x vars x 8`` its shape implies.
    """
    if sp.issparse(matrix):
        return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)
    return int(matrix.nbytes)


def dense_equivalent_nbytes(matrix: np.ndarray | sp.spmatrix) -> int:
    """Bytes a dense float64 materialization of ``matrix`` would take."""
    rows, cols = matrix.shape
    return int(rows) * int(cols) * 8


def matrices_equal(a: np.ndarray | sp.spmatrix, b: np.ndarray | sp.spmatrix) -> bool:
    """Exact (bitwise-value) equality of two constraint matrices.

    Two canonical CSR matrices are equal iff their three arrays match;
    mixed dense/sparse operands compare by densifying the sparse side
    (correct, and only reachable when a caller mixes compile flavors —
    the session layer never does on purpose).
    """
    if a.shape != b.shape:
        return False
    a_sparse, b_sparse = sp.issparse(a), sp.issparse(b)
    if a_sparse and b_sparse:
        a, b = a.tocsr(), b.tocsr()
        return (
            np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.array_equal(a.data, b.data)
        )
    if a_sparse or b_sparse:
        return np.array_equal(to_dense(a), to_dense(b))
    return np.array_equal(a, b)


def digest_update(hasher, matrix: np.ndarray | sp.spmatrix) -> None:
    """Feed a matrix's exact content into a running hash.

    Sparse matrices hash their canonical triple; a dense matrix with
    the same values hashes differently, which is deliberate — the
    session's LP caches must never be shared across compile flavors,
    because the backends' float pipelines may differ in the last ulp.
    """
    hasher.update(str(matrix.shape).encode())
    if sp.issparse(matrix):
        matrix = matrix.tocsr()
        hasher.update(b"csr")
        hasher.update(np.ascontiguousarray(matrix.indptr).tobytes())
        hasher.update(np.ascontiguousarray(matrix.indices).tobytes())
        hasher.update(np.ascontiguousarray(matrix.data).tobytes())
    else:
        hasher.update(np.ascontiguousarray(matrix).tobytes())


def pack_bitset(row_lists: list[np.ndarray], num_rows: int) -> np.ndarray:
    """Pack per-column row-support sets into a uint64 bitset matrix.

    ``row_lists[k]`` holds the (active-row-local) indices where column
    ``k`` is nonzero; the result has shape ``(len(row_lists), words)``
    with bit ``r`` of word ``r // 64`` set.  The dominated-column rule
    uses these for vectorized subset tests over thousands of columns.
    """
    words = max(1, -(-num_rows // 64))
    bits = np.zeros((len(row_lists), words), dtype=np.uint64)
    for k, rows in enumerate(row_lists):
        if rows.size:
            np.bitwise_or.at(
                bits[k],
                rows // 64,
                np.uint64(1) << (rows % 64).astype(np.uint64),
            )
    return bits
