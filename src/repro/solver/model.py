"""The MILP model container and its standard-form compilation.

:class:`MilpModel` owns variables and constraints, and compiles itself
into the standard form consumed by every backend::

    optimize   c @ x
    subject to A_ub @ x <= b_ub
               A_eq @ x == b_eq
               lower <= x <= upper,   x[i] integral where marked

Maximization is normalized to minimization by negating ``c`` at compile
time; backends always minimize and :class:`Solution` objects report the
objective in the model's original sense.

Compilation is **sparse by default**: the constraint matrices come back
as canonical scipy CSR, assembled in ``O(nnz + rows)`` from a
per-constraint sparse-row memo.  The deployment formulations are well
under 1% dense at catalog scale, where the historical dense
``np.zeros(n)``-per-row path cost ``O(rows x vars)`` time and memory
per compile — seconds and hundreds of megabytes at 1000+ monitors.
The dense path is retained behind ``compile(dense=True)`` for
differential testing and small-model consumers; both paths read the
same row memo, so their numeric content is bit-identical (the sparse
differential suite in ``tests/solver/test_sparse_compile.py`` pins
this).  Dense compilation refuses matrices beyond
:data:`MAX_DENSE_CELLS` cells — at that size the dense form is a
mistake, not a preference.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, replace

import numpy as np
import scipy.sparse as _sp

from repro import obs
from repro.errors import SolverError
from repro.solver.expressions import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    Variable,
    VarKind,
)
from repro.solver.sparse import (
    csr_from_rows,
    dense_equivalent_nbytes,
    matrix_nbytes,
    to_dense,
)

__all__ = [
    "ObjectiveSense",
    "MilpModel",
    "StandardForm",
    "SolutionStatus",
    "Solution",
    "MAX_DENSE_CELLS",
]

#: Hard ceiling on ``rows x vars`` for ``compile(dense=True)``.  A
#: 25M-cell float64 matrix is 200 MB before the ``np.array`` stack copy
#: and presolve's sign-split copies multiply it; above this the dense
#: path refuses with a pointer at the sparse default instead of
#: thrashing the allocator.  (At catalog scale — 2000 monitors / 500
#: attacks — the standard form is ~29.5M cells, past this limit, while
#: its CSR payload stays under a megabyte.)
MAX_DENSE_CELLS = 25_000_000


class ObjectiveSense(str, enum.Enum):
    """Whether the model maximizes or minimizes its objective."""

    MAXIMIZE = "maximize"
    MINIMIZE = "minimize"


@dataclass(frozen=True, slots=True)
class StandardForm:
    """Numeric form of a model (minimization convention).

    ``A_ub``/``A_eq`` are canonical CSR under the default sparse
    compile and plain ``float64`` ndarrays under ``compile(dense=True)``;
    every other field is always dense.  Emptiness of a constraint block
    must be tested via ``b_ub.size``/``b_eq.size`` (or the row count of
    the shape) — for a sparse matrix ``.size`` is the *nonzero* count,
    so a genuine all-zero row would vanish from a ``A_ub.size`` test.
    """

    c: np.ndarray
    A_ub: np.ndarray | _sp.csr_matrix
    b_ub: np.ndarray
    A_eq: np.ndarray | _sp.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # bool mask
    objective_constant: float
    maximize: bool

    @property
    def num_variables(self) -> int:
        return self.c.shape[0]

    @property
    def is_sparse(self) -> bool:
        """Whether the constraint matrices are scipy CSR."""
        return _sp.issparse(self.A_ub) or _sp.issparse(self.A_eq)

    @property
    def matrix_nbytes(self) -> int:
        """Actual payload bytes of ``A_ub`` + ``A_eq`` as stored."""
        return matrix_nbytes(self.A_ub) + matrix_nbytes(self.A_eq)

    @property
    def dense_matrix_nbytes(self) -> int:
        """Bytes the constraint matrices would occupy densely."""
        return dense_equivalent_nbytes(self.A_ub) + dense_equivalent_nbytes(self.A_eq)

    def to_dense(self) -> StandardForm:
        """This form with the constraint matrices densified (no-op if dense)."""
        if not self.is_sparse:
            return self
        return replace(self, A_ub=to_dense(self.A_ub), A_eq=to_dense(self.A_eq))

    def objective_in_model_sense(self, minimized_value: float) -> float:
        """Convert a backend's minimized objective to the model's sense."""
        value = minimized_value + (-self.objective_constant if self.maximize else self.objective_constant)
        return -value if self.maximize else value

    def minimized_from_model_sense(self, model_value: float) -> float:
        """Inverse of :meth:`objective_in_model_sense`.

        Converts an objective reported in the model's sense (e.g. a
        previous solve's optimum reused as a dual bound) back to the
        minimization convention the backends search in.
        """
        value = -model_value if self.maximize else model_value
        return value - (-self.objective_constant if self.maximize else self.objective_constant)


class SolutionStatus(str, enum.Enum):
    """Terminal status of a solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven


@dataclass(frozen=True, slots=True)
class Solution:
    """A solve result: status, objective (model sense), and assignment."""

    status: SolutionStatus
    objective: float
    values: Mapping[str, float]
    backend: str
    nodes_explored: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolutionStatus.OPTIMAL

    def value(self, variable: Variable | str) -> float:
        """The solved value of a variable (by object or name)."""
        name = variable.name if isinstance(variable, Variable) else variable
        try:
            return self.values[name]
        except KeyError:
            raise SolverError(f"solution has no variable {name!r}") from None


def _densify_rows(rows: list[tuple[np.ndarray, np.ndarray]], n: int) -> np.ndarray:
    """Materialize ``(cols, vals)`` row fragments as a dense matrix."""
    matrix = np.zeros((len(rows), n))
    for i, (cols, vals) in enumerate(rows):
        matrix[i, cols] = vals
    return matrix


class MilpModel:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "milp", sense: ObjectiveSense = ObjectiveSense.MAXIMIZE):
        self.name = name
        self.sense = sense
        self._variables: list[Variable] = []
        self._names: set[str] = set()
        self._constraints: list[Constraint] = []
        self._objective: LinearExpression = LinearExpression()
        # Sparse-row memo aligned with _constraints: entry i is
        # (constraint, cols, vals, signed rhs, is_eq) and is valid
        # while _constraints[i] is that same (immutable) object — the
        # fragments name columns, not a vector length, so rows stay
        # valid even after new variables are added.  Lets a formulation
        # family recompile after truncate/append cycles paying only for
        # the rows that actually changed.  ``cols`` is sorted int32 and
        # ``vals`` carries no explicit zeros (the LinearExpression
        # constructor strips them), so compiled matrices are canonical
        # CSR by construction.
        self._row_cache: list[tuple[Constraint, np.ndarray, np.ndarray, float, bool]] = []

    # -- variable factories ------------------------------------------------

    def _new_variable(self, name: str, lower: float, upper: float, kind: VarKind) -> Variable:
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r} in model {self.name!r}")
        variable = Variable(name, lower, upper, kind, index=len(self._variables))
        self._variables.append(variable)
        self._names.add(name)
        return variable

    def binary(self, name: str) -> Variable:
        """A 0/1 decision variable."""
        return self._new_variable(name, 0.0, 1.0, VarKind.BINARY)

    def integer(self, name: str, lower: float = 0.0, upper: float = float("inf")) -> Variable:
        """An integer variable with the given bounds."""
        return self._new_variable(name, lower, upper, VarKind.INTEGER)

    def continuous(
        self, name: str, lower: float = 0.0, upper: float = float("inf")
    ) -> Variable:
        """A continuous variable with the given bounds."""
        return self._new_variable(name, lower, upper, VarKind.CONTINUOUS)

    # -- constraints and objective -------------------------------------------

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                f"expected a Constraint (use <=, >=, == on expressions), got "
                f"{type(constraint).__name__}"
            )
        for var in constraint.expression.terms:
            self._check_owned(var)
        if name:
            constraint = constraint.named(name)
        self._constraints.append(constraint)
        return constraint

    def truncate_constraints(self, count: int) -> None:
        """Drop every constraint added after the first ``count``.

        This is the rollback primitive behind formulation reuse: a
        family of related instances builds the expensive shared core
        once, records ``num_constraints``, and between instances rolls
        back to that mark before appending the per-instance rows.
        Variables and the objective are untouched — per-instance rows
        must not introduce new variables.
        """
        if not 0 <= count <= len(self._constraints):
            raise SolverError(
                f"cannot truncate to {count} constraints: model {self.name!r} "
                f"has {len(self._constraints)}"
            )
        del self._constraints[count:]

    def set_objective(self, expression: LinearExpression | Variable) -> None:
        """Set the objective function (in the model's sense)."""
        if isinstance(expression, Variable):
            expression = expression + 0.0
        if not isinstance(expression, LinearExpression):
            raise SolverError(
                f"objective must be a linear expression, got {type(expression).__name__}"
            )
        for var in expression.terms:
            self._check_owned(var)
        self._objective = expression

    def _check_owned(self, var: Variable) -> None:
        if var.index >= len(self._variables) or self._variables[var.index] is not var:
            raise SolverError(f"variable {var.name!r} does not belong to model {self.name!r}")

    # -- accessors ----------------------------------------------------------

    @property
    def variables(self) -> list[Variable]:
        """All variables, in creation (column) order."""
        return list(self._variables)

    @property
    def constraints(self) -> list[Constraint]:
        """All constraints, in insertion order."""
        return list(self._constraints)

    @property
    def objective(self) -> LinearExpression:
        """The current objective expression."""
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self._variables if v.is_integral)

    # -- compilation -----------------------------------------------------------

    def compile(self, *, dense: bool = False) -> StandardForm:
        """Compile to standard (minimization) form — CSR by default.

        ``GE`` rows are negated into ``LE`` rows; a maximization
        objective is negated, with the flip recorded so solutions can be
        reported in the model's original sense.

        With ``dense=True`` the constraint matrices are materialized as
        plain ndarrays from the same row memo — numerically identical
        cell for cell, kept for differential testing and small-model
        callers.  The dense path refuses matrices beyond
        :data:`MAX_DENSE_CELLS` cells with a :class:`SolverError`.
        """
        with obs.span("solver.compile", model=self.name, dense=dense):
            return self._compile(dense)

    def _compile(self, dense: bool) -> StandardForm:
        n = len(self._variables)
        if dense and len(self._constraints) * n > MAX_DENSE_CELLS:
            raise SolverError(
                f"refusing dense compile of model {self.name!r}: "
                f"{len(self._constraints)} rows x {n} vars = "
                f"{len(self._constraints) * n} cells exceeds the "
                f"{MAX_DENSE_CELLS}-cell dense limit; use the default "
                f"sparse compile"
            )
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            c[var.index] = coef
        maximize = self.sense is ObjectiveSense.MAXIMIZE
        if maximize:
            c = -c

        ub_rows: list[tuple[np.ndarray, np.ndarray]] = []
        ub_rhs: list[float] = []
        eq_rows: list[tuple[np.ndarray, np.ndarray]] = []
        eq_rhs: list[float] = []
        cache = self._row_cache
        del cache[len(self._constraints):]
        for i, constraint in enumerate(self._constraints):
            entry = cache[i] if i < len(cache) else None
            if entry is not None and entry[0] is constraint:
                _, cols, vals, rhs, is_eq = entry
            else:
                terms = constraint.expression.terms
                cols = np.empty(len(terms), dtype=np.int32)
                vals = np.empty(len(terms), dtype=np.float64)
                for k, (var, coef) in enumerate(terms.items()):
                    cols[k] = var.index
                    vals[k] = coef
                order = np.argsort(cols, kind="stable")
                cols = np.ascontiguousarray(cols[order])
                vals = np.ascontiguousarray(vals[order])
                rhs = constraint.rhs
                if constraint.sense is ConstraintSense.GE:
                    vals, rhs = -vals, -rhs
                is_eq = constraint.sense is ConstraintSense.EQ
                if i < len(cache):
                    cache[i] = (constraint, cols, vals, rhs, is_eq)
                else:
                    cache.append((constraint, cols, vals, rhs, is_eq))
            if is_eq:
                eq_rows.append((cols, vals))
                eq_rhs.append(rhs)
            else:
                ub_rows.append((cols, vals))
                ub_rhs.append(rhs)

        if dense:
            A_ub = _densify_rows(ub_rows, n)
            A_eq = _densify_rows(eq_rows, n)
        else:
            A_ub = csr_from_rows(ub_rows, n)
            A_eq = csr_from_rows(eq_rows, n)

        form = StandardForm(
            c=c,
            A_ub=A_ub,
            b_ub=np.array(ub_rhs) if ub_rhs else np.empty(0),
            A_eq=A_eq,
            b_eq=np.array(eq_rhs) if eq_rhs else np.empty(0),
            lower=np.array([v.lower for v in self._variables]),
            upper=np.array([v.upper for v in self._variables]),
            integrality=np.array([v.is_integral for v in self._variables], dtype=bool),
            objective_constant=self._objective.constant,
            maximize=maximize,
        )
        obs.gauge("solver.matrix.nbytes").set(float(form.matrix_nbytes))
        obs.gauge("solver.matrix.dense_nbytes").set(float(form.dense_matrix_nbytes))
        return form

    # -- solution checking -------------------------------------------------------

    def assignment_from_values(self, values: Mapping[str, float]) -> dict[Variable, float]:
        """Map a name-keyed solution back onto this model's variables."""
        assignment: dict[Variable, float] = {}
        for var in self._variables:
            if var.name not in values:
                raise SolverError(f"assignment is missing variable {var.name!r}")
            assignment[var] = values[var.name]
        return assignment

    def is_feasible(self, values: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        """Whether a name-keyed assignment satisfies bounds, integrality, constraints."""
        assignment = self.assignment_from_values(values)
        for var, value in assignment.items():
            if value < var.lower - tolerance or value > var.upper + tolerance:
                return False
            if var.is_integral and abs(value - round(value)) > tolerance:
                return False
        return all(c.satisfied_by(assignment, tolerance) for c in self._constraints)

    def objective_value(self, values: Mapping[str, float]) -> float:
        """Evaluate the objective at a name-keyed assignment (model sense)."""
        return self._objective.evaluate(self.assignment_from_values(values))

    def __repr__(self) -> str:
        return (
            f"MilpModel({self.name!r}, {self.sense.value}, "
            f"{self.num_variables} vars ({self.num_integer_variables} int), "
            f"{self.num_constraints} constraints)"
        )
