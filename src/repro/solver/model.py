"""The MILP model container and its standard-form compilation.

:class:`MilpModel` owns variables and constraints, and compiles itself
into the dense standard form consumed by every backend::

    optimize   c @ x
    subject to A_ub @ x <= b_ub
               A_eq @ x == b_eq
               lower <= x <= upper,   x[i] integral where marked

Maximization is normalized to minimization by negating ``c`` at compile
time; backends always minimize and :class:`Solution` objects report the
objective in the model's original sense.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.solver.expressions import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    Variable,
    VarKind,
)

__all__ = ["ObjectiveSense", "MilpModel", "StandardForm", "SolutionStatus", "Solution"]


class ObjectiveSense(str, enum.Enum):
    """Whether the model maximizes or minimizes its objective."""

    MAXIMIZE = "maximize"
    MINIMIZE = "minimize"


@dataclass(frozen=True, slots=True)
class StandardForm:
    """Dense numeric form of a model (minimization convention)."""

    c: np.ndarray
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # bool mask
    objective_constant: float
    maximize: bool

    @property
    def num_variables(self) -> int:
        return self.c.shape[0]

    def objective_in_model_sense(self, minimized_value: float) -> float:
        """Convert a backend's minimized objective to the model's sense."""
        value = minimized_value + (-self.objective_constant if self.maximize else self.objective_constant)
        return -value if self.maximize else value

    def minimized_from_model_sense(self, model_value: float) -> float:
        """Inverse of :meth:`objective_in_model_sense`.

        Converts an objective reported in the model's sense (e.g. a
        previous solve's optimum reused as a dual bound) back to the
        minimization convention the backends search in.
        """
        value = -model_value if self.maximize else model_value
        return value - (-self.objective_constant if self.maximize else self.objective_constant)


class SolutionStatus(str, enum.Enum):
    """Terminal status of a solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven


@dataclass(frozen=True, slots=True)
class Solution:
    """A solve result: status, objective (model sense), and assignment."""

    status: SolutionStatus
    objective: float
    values: Mapping[str, float]
    backend: str
    nodes_explored: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolutionStatus.OPTIMAL

    def value(self, variable: Variable | str) -> float:
        """The solved value of a variable (by object or name)."""
        name = variable.name if isinstance(variable, Variable) else variable
        try:
            return self.values[name]
        except KeyError:
            raise SolverError(f"solution has no variable {name!r}") from None


class MilpModel:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "milp", sense: ObjectiveSense = ObjectiveSense.MAXIMIZE):
        self.name = name
        self.sense = sense
        self._variables: list[Variable] = []
        self._names: set[str] = set()
        self._constraints: list[Constraint] = []
        self._objective: LinearExpression = LinearExpression()
        # Dense-row memo aligned with _constraints: entry i is
        # (constraint, signed row, signed rhs, is_eq) and is valid only
        # while _constraints[i] is that same (immutable) object.  Lets
        # a formulation family recompile after truncate/append cycles
        # paying only for the rows that actually changed.
        self._row_cache: list[tuple[Constraint, np.ndarray, float, bool]] = []

    # -- variable factories ------------------------------------------------

    def _new_variable(self, name: str, lower: float, upper: float, kind: VarKind) -> Variable:
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r} in model {self.name!r}")
        variable = Variable(name, lower, upper, kind, index=len(self._variables))
        self._variables.append(variable)
        self._names.add(name)
        return variable

    def binary(self, name: str) -> Variable:
        """A 0/1 decision variable."""
        return self._new_variable(name, 0.0, 1.0, VarKind.BINARY)

    def integer(self, name: str, lower: float = 0.0, upper: float = float("inf")) -> Variable:
        """An integer variable with the given bounds."""
        return self._new_variable(name, lower, upper, VarKind.INTEGER)

    def continuous(
        self, name: str, lower: float = 0.0, upper: float = float("inf")
    ) -> Variable:
        """A continuous variable with the given bounds."""
        return self._new_variable(name, lower, upper, VarKind.CONTINUOUS)

    # -- constraints and objective -------------------------------------------

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                f"expected a Constraint (use <=, >=, == on expressions), got "
                f"{type(constraint).__name__}"
            )
        for var in constraint.expression.terms:
            self._check_owned(var)
        if name:
            constraint = constraint.named(name)
        self._constraints.append(constraint)
        return constraint

    def truncate_constraints(self, count: int) -> None:
        """Drop every constraint added after the first ``count``.

        This is the rollback primitive behind formulation reuse: a
        family of related instances builds the expensive shared core
        once, records ``num_constraints``, and between instances rolls
        back to that mark before appending the per-instance rows.
        Variables and the objective are untouched — per-instance rows
        must not introduce new variables.
        """
        if not 0 <= count <= len(self._constraints):
            raise SolverError(
                f"cannot truncate to {count} constraints: model {self.name!r} "
                f"has {len(self._constraints)}"
            )
        del self._constraints[count:]

    def set_objective(self, expression: LinearExpression | Variable) -> None:
        """Set the objective function (in the model's sense)."""
        if isinstance(expression, Variable):
            expression = expression + 0.0
        if not isinstance(expression, LinearExpression):
            raise SolverError(
                f"objective must be a linear expression, got {type(expression).__name__}"
            )
        for var in expression.terms:
            self._check_owned(var)
        self._objective = expression

    def _check_owned(self, var: Variable) -> None:
        if var.index >= len(self._variables) or self._variables[var.index] is not var:
            raise SolverError(f"variable {var.name!r} does not belong to model {self.name!r}")

    # -- accessors ----------------------------------------------------------

    @property
    def variables(self) -> list[Variable]:
        """All variables, in creation (column) order."""
        return list(self._variables)

    @property
    def constraints(self) -> list[Constraint]:
        """All constraints, in insertion order."""
        return list(self._constraints)

    @property
    def objective(self) -> LinearExpression:
        """The current objective expression."""
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self._variables if v.is_integral)

    # -- compilation -----------------------------------------------------------

    def compile(self) -> StandardForm:
        """Compile to dense standard (minimization) form.

        ``GE`` rows are negated into ``LE`` rows; a maximization
        objective is negated, with the flip recorded so solutions can be
        reported in the model's original sense.
        """
        n = len(self._variables)
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            c[var.index] = coef
        maximize = self.sense is ObjectiveSense.MAXIMIZE
        if maximize:
            c = -c

        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        cache = self._row_cache
        del cache[len(self._constraints):]
        for i, constraint in enumerate(self._constraints):
            entry = cache[i] if i < len(cache) else None
            if entry is not None and entry[0] is constraint and entry[1].shape[0] == n:
                _, row, rhs, is_eq = entry
            else:
                row = np.zeros(n)
                for var, coef in constraint.expression.terms.items():
                    row[var.index] = coef
                rhs = constraint.rhs
                if constraint.sense is ConstraintSense.GE:
                    row, rhs = -row, -rhs
                is_eq = constraint.sense is ConstraintSense.EQ
                if i < len(cache):
                    cache[i] = (constraint, row, rhs, is_eq)
                else:
                    cache.append((constraint, row, rhs, is_eq))
            if is_eq:
                eq_rows.append(row)
                eq_rhs.append(rhs)
            else:
                ub_rows.append(row)
                ub_rhs.append(rhs)

        return StandardForm(
            c=c,
            A_ub=np.array(ub_rows) if ub_rows else np.empty((0, n)),
            b_ub=np.array(ub_rhs) if ub_rhs else np.empty(0),
            A_eq=np.array(eq_rows) if eq_rows else np.empty((0, n)),
            b_eq=np.array(eq_rhs) if eq_rhs else np.empty(0),
            lower=np.array([v.lower for v in self._variables]),
            upper=np.array([v.upper for v in self._variables]),
            integrality=np.array([v.is_integral for v in self._variables], dtype=bool),
            objective_constant=self._objective.constant,
            maximize=maximize,
        )

    # -- solution checking -------------------------------------------------------

    def assignment_from_values(self, values: Mapping[str, float]) -> dict[Variable, float]:
        """Map a name-keyed solution back onto this model's variables."""
        assignment: dict[Variable, float] = {}
        for var in self._variables:
            if var.name not in values:
                raise SolverError(f"assignment is missing variable {var.name!r}")
            assignment[var] = values[var.name]
        return assignment

    def is_feasible(self, values: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        """Whether a name-keyed assignment satisfies bounds, integrality, constraints."""
        assignment = self.assignment_from_values(values)
        for var, value in assignment.items():
            if value < var.lower - tolerance or value > var.upper + tolerance:
                return False
            if var.is_integral and abs(value - round(value)) > tolerance:
                return False
        return all(c.satisfied_by(assignment, tolerance) for c in self._constraints)

    def objective_value(self, values: Mapping[str, float]) -> float:
        """Evaluate the objective at a name-keyed assignment (model sense)."""
        return self._objective.evaluate(self.assignment_from_values(values))

    def __repr__(self) -> str:
        return (
            f"MilpModel({self.name!r}, {self.sense.value}, "
            f"{self.num_variables} vars ({self.num_integer_variables} int), "
            f"{self.num_constraints} constraints)"
        )
