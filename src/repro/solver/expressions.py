"""Linear expressions, variables, and constraints for the MILP substrate.

This is a small algebraic layer in the style of PuLP: variables combine
with ``+ - *`` into :class:`LinearExpression` objects, and comparison
operators (``<=``, ``>=``, ``==``) against expressions or numbers yield
:class:`Constraint` objects ready to be added to a
:class:`~repro.solver.model.MilpModel`.

Expressions are immutable; every operation returns a new object.  For
hot construction paths (thousands of terms), use
:meth:`LinearExpression.sum_of` which builds in one pass.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable, Mapping
from numbers import Real

from repro.errors import SolverError

__all__ = ["VarKind", "Variable", "LinearExpression", "ConstraintSense", "Constraint"]


class VarKind(str, enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A named decision variable with bounds and a domain kind.

    Variables are created through :class:`~repro.solver.model.MilpModel`
    factory methods, which guarantee unique names and assign each
    variable its column ``index``.  Identity (not name) defines hashing,
    so two models can safely use the same variable names.
    """

    __slots__ = ("name", "lower", "upper", "kind", "index")

    def __init__(self, name: str, lower: float, upper: float, kind: VarKind, index: int):
        if not name:
            raise SolverError("variable name must be non-empty")
        if math.isnan(lower) or math.isnan(upper):
            raise SolverError(f"variable {name!r} has NaN bounds")
        if lower > upper:
            raise SolverError(f"variable {name!r} has empty domain [{lower}, {upper}]")
        self.name = name
        self.lower = lower
        self.upper = upper
        self.kind = kind
        self.index = index

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.kind in (VarKind.INTEGER, VarKind.BINARY)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}], {self.kind.value})"

    # -- algebra (delegate to LinearExpression) --------------------------

    def _as_expression(self) -> "LinearExpression":
        return LinearExpression({self: 1.0}, 0.0)

    def __add__(self, other):
        return self._as_expression() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._as_expression() - other

    def __rsub__(self, other):
        return (-self._as_expression()) + other

    def __neg__(self):
        return -self._as_expression()

    def __mul__(self, factor):
        return self._as_expression() * factor

    __rmul__ = __mul__

    def __le__(self, other):
        return self._as_expression() <= other

    def __ge__(self, other):
        return self._as_expression() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinearExpression, Real)):
            return self._as_expression() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)


class LinearExpression:
    """An immutable affine expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0):
        cleaned: dict[Variable, float] = {}
        for var, coef in (terms or {}).items():
            coef = float(coef)
            if math.isnan(coef) or math.isinf(coef):
                raise SolverError(f"non-finite coefficient {coef!r} for variable {var.name!r}")
            if coef != 0.0:
                cleaned[var] = coef
        self.terms = cleaned
        self.constant = float(constant)
        if math.isnan(self.constant) or math.isinf(self.constant):
            raise SolverError(f"non-finite expression constant {constant!r}")

    # -- construction helpers ---------------------------------------------

    @classmethod
    def sum_of(
        cls, pairs: Iterable[tuple[Variable, float]], constant: float = 0.0
    ) -> "LinearExpression":
        """Build ``sum(coef * var) + constant`` in one pass, merging duplicates."""
        terms: dict[Variable, float] = {}
        for var, coef in pairs:
            terms[var] = terms.get(var, 0.0) + float(coef)
        return cls(terms, constant)

    @staticmethod
    def _coerce(value) -> "LinearExpression":
        if isinstance(value, LinearExpression):
            return value
        if isinstance(value, Variable):
            return value._as_expression()
        if isinstance(value, Real):
            return LinearExpression({}, float(value))
        raise SolverError(f"cannot use {type(value).__name__} in a linear expression")

    # -- algebra ------------------------------------------------------------

    def __add__(self, other) -> "LinearExpression":
        other = self._coerce(other)
        terms = dict(self.terms)
        for var, coef in other.terms.items():
            terms[var] = terms.get(var, 0.0) + coef
        return LinearExpression(terms, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other) -> "LinearExpression":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpression":
        return self._coerce(other) + (self * -1.0)

    def __neg__(self) -> "LinearExpression":
        return self * -1.0

    def __mul__(self, factor) -> "LinearExpression":
        if not isinstance(factor, Real):
            raise SolverError("linear expressions can only be scaled by numbers")
        factor = float(factor)
        return LinearExpression(
            {var: coef * factor for var, coef in self.terms.items()}, self.constant * factor
        )

    __rmul__ = __mul__

    # -- comparisons build constraints ---------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), ConstraintSense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), ConstraintSense.GE)

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinearExpression, Real)):
            return Constraint(self - self._coerce(other), ConstraintSense.EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, assignment: Mapping[Variable, float]) -> float:
        """The expression's value under a variable assignment."""
        return self.constant + sum(coef * assignment[var] for var, coef in self.terms.items())

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class ConstraintSense(str, enum.Enum):
    """Direction of a linear constraint, normalized as ``expr SENSE 0``."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expression (<=|>=|==) 0``.

    Comparison operators on expressions move everything to the left-hand
    side, so ``rhs`` below is the *normalized* right-hand side
    (``-expression.constant``) against the pure linear part.
    """

    __slots__ = ("expression", "sense", "name")

    def __init__(self, expression: LinearExpression, sense: ConstraintSense, name: str = ""):
        self.expression = expression
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side once the constant moves across the relation."""
        return -self.expression.constant

    def named(self, name: str) -> "Constraint":
        """A copy of this constraint carrying ``name`` (for diagnostics)."""
        return Constraint(self.expression, self.sense, name)

    def satisfied_by(self, assignment: Mapping[Variable, float], tolerance: float = 1e-7) -> bool:
        """Whether the assignment satisfies the constraint within tolerance."""
        lhs = self.expression.evaluate(assignment)
        if self.sense is ConstraintSense.LE:
            return lhs <= tolerance
        if self.sense is ConstraintSense.GE:
            return lhs >= -tolerance
        return abs(lhs) <= tolerance

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        linear = LinearExpression(self.expression.terms, 0.0)
        return f"{label}{linear!r} {self.sense.value} {self.rhs:g}"
