"""A from-scratch branch-and-bound MILP solver.

Best-first search over LP relaxations: each node fixes tighter bounds on
the integral variables, the LP relaxation provides a dual bound, and
integral LP solutions become incumbents.  Branching selects the integral
variable whose relaxation value is most fractional (closest to 0.5),
which works well on the 0/1 covering structures this library generates.

This backend exists so the reproduction is self-contained — the paper's
methodology relies on an exact solver, and this one proves optimality
without any dependency beyond scipy's LP.  For large instances prefer
the HiGHS backend (:mod:`repro.solver.scipy_backend`); experiment F7
compares the two.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Mapping, MutableMapping

import numpy as np

from repro import obs
from repro.errors import SolverError, UnboundedError
from repro.solver.lp import LpResult, solve_lp
from repro.solver.model import MilpModel, Solution, SolutionStatus, StandardForm

__all__ = ["solve_branch_and_bound"]

#: Absolute integrality tolerance: relaxation values this close to an
#: integer are treated as integral.
INTEGRALITY_TOLERANCE = 1e-6

#: Relative optimality gap at which the search stops early.
DEFAULT_GAP = 1e-9

#: Absolute feasibility tolerance for accepting a snapped-integral point
#: as an incumbent (matches the HiGHS MIP feasibility default).
FEASIBILITY_TOLERANCE = 1e-6


def _snapped_if_feasible(form: StandardForm, x: np.ndarray, integral_indices: np.ndarray) -> np.ndarray | None:
    """Round the integral entries of ``x``; None when rounding breaks a row.

    An LP point can sit within the integrality tolerance of an integer
    while the *rounded* point violates a tight constraint: rounding moves
    each coordinate by up to 1e-6, which a row with large coefficients
    (a budget cap in the thousands) amplifies past any LP feasibility
    margin.  Accepting such a point would report an infeasible
    "optimum", so the caller must branch instead.
    """
    snapped = x.copy()
    snapped[integral_indices] = np.round(snapped[integral_indices])
    tol = FEASIBILITY_TOLERANCE
    # Emptiness by rhs length (CSR .size is nnz); `A @ x` works for both
    # dense and sparse matrices and returns a dense vector either way.
    if form.b_ub.size and np.any(form.A_ub @ snapped > form.b_ub + tol):
        return None
    if form.b_eq.size and np.any(np.abs(form.A_eq @ snapped - form.b_eq) > tol):
        return None
    if np.any(snapped < form.lower - tol) or np.any(snapped > form.upper + tol):
        return None
    return snapped


def _most_fractional(x: np.ndarray, integral_indices: np.ndarray) -> int | None:
    """Index of the integral variable farthest from any integer, or None."""
    if integral_indices.size == 0:
        return None  # pure-LP node: integral by definition
    values = x[integral_indices]
    fractions = np.abs(values - np.round(values))
    worst = int(np.argmax(fractions))
    if fractions[worst] <= INTEGRALITY_TOLERANCE:
        return None
    return int(integral_indices[worst])


def _seed_incumbent(
    model: MilpModel,
    form: StandardForm,
    names: list[str],
    warm_start: Mapping[str, float],
) -> tuple[np.ndarray | None, float]:
    """Validate a warm-start assignment and turn it into an incumbent.

    An infeasible or incomplete assignment is rejected (counted, never
    fatal) — warm starts are an acceleration, not a contract.
    """
    try:
        feasible = model.is_feasible(warm_start)
    except SolverError:
        feasible = False
    if not feasible:
        obs.counter("solver.warm_start.rejected").inc()
        return None, float("inf")
    x = np.array([float(warm_start[name]) for name in names])
    integral = np.flatnonzero(form.integrality)
    x[integral] = np.round(x[integral])
    obs.counter("solver.warm_start.accepted").inc()
    return x, float(form.c @ x)


def _relax(
    form: StandardForm,
    lower: np.ndarray,
    upper: np.ndarray,
    cache: MutableMapping[tuple[bytes, bytes], LpResult] | None,
) -> LpResult:
    """Solve a node's LP relaxation, via the cross-solve cache when given.

    The cache key is the node signature (the branching bounds); callers
    must scope a cache to one immutable ``(c, A, b)`` instance — the
    :class:`~repro.solver.session.SolveSession` keys its caches by the
    instance digest for exactly this reason.
    """
    if cache is None:
        return solve_lp(form.c, form.A_ub, form.b_ub, form.A_eq, form.b_eq, lower, upper)
    key = (lower.tobytes(), upper.tobytes())
    hit = cache.get(key)
    if hit is not None:
        obs.counter("solver.lp_cache.hits").inc()
        return hit
    obs.counter("solver.lp_cache.misses").inc()
    result = solve_lp(form.c, form.A_ub, form.b_ub, form.A_eq, form.b_eq, lower, upper)
    cache[key] = result
    return result


def solve_branch_and_bound(
    model: MilpModel,
    *,
    time_limit: float | None = None,
    max_nodes: int = 1_000_000,
    gap: float = DEFAULT_GAP,
    warm_start: Mapping[str, float] | None = None,
    known_bound: float | None = None,
    lp_cache: MutableMapping[tuple[bytes, bytes], LpResult] | None = None,
    dense: bool = False,
) -> Solution:
    """Solve ``model`` to proven optimality by branch and bound.

    Parameters
    ----------
    model:
        The MILP to solve.
    dense:
        Compile the constraint matrices densely instead of CSR.
        Retained for differential testing and the F14 before/after
        measurement; answers are bit-identical, only node bound
        computation cost changes.  Subject to the dense cell limit
        (:data:`~repro.solver.model.MAX_DENSE_CELLS`).
    time_limit:
        Wall-clock seconds after which the best incumbent is returned
        with status ``FEASIBLE`` (or ``INFEASIBLE`` if none was found).
    max_nodes:
        Hard cap on explored nodes, same fallback behaviour.
    gap:
        Relative optimality gap ``|bound - incumbent| / max(1, |incumbent|)``
        at which the incumbent is accepted as optimal.
    warm_start:
        Optional name-keyed assignment used as the starting incumbent
        when it is feasible for this model (rejected silently when not).
        Seeding only prunes — it never changes which objective value is
        proven optimal.
    known_bound:
        Optional proven dual bound in the *model's* objective sense
        (e.g. the optimum of a previous, strictly looser instance of the
        same family).  Used to close the gap earlier; must genuinely
        bound this instance or optimality claims become wrong.
    lp_cache:
        Optional mutable mapping reused across solves of the *same*
        compiled instance: node relaxations are cached by their bound
        signature (see :func:`_relax`).
    """
    with obs.span("solver.branch_and_bound", model=model.name) as sp:
        solution = _search(
            model, time_limit, max_nodes, gap, sp, warm_start, known_bound,
            lp_cache, dense=dense,
        )
    sp.set(nodes=solution.nodes_explored)
    obs.counter("solver.solves").inc()
    obs.counter("solver.nodes").inc(solution.nodes_explored)
    obs.histogram("solver.solve_seconds").observe(sp.duration)
    return solution


def _search(
    model: MilpModel,
    time_limit: float | None,
    max_nodes: int,
    gap: float,
    sp: obs.Span,
    warm_start: Mapping[str, float] | None = None,
    known_bound: float | None = None,
    lp_cache: MutableMapping[tuple[bytes, bytes], LpResult] | None = None,
    dense: bool = False,
) -> Solution:
    form = model.compile(dense=dense)
    sp.set(variables=int(form.c.size), rows=int(len(form.b_ub) + len(form.b_eq)))
    names = [v.name for v in model.variables]
    integral_indices = np.flatnonzero(form.integrality)
    deadline = None if time_limit is None else time.monotonic() + time_limit

    def make_solution(status: SolutionStatus, objective_min: float, x: np.ndarray | None, nodes: int) -> Solution:
        values: dict[str, float] = {}
        if x is not None:
            rounded = x.copy()
            rounded[integral_indices] = np.round(rounded[integral_indices])
            values = {name: float(v) for name, v in zip(names, rounded)}
        objective = form.objective_in_model_sense(objective_min) if x is not None else float("nan")
        return Solution(
            status=status,
            objective=objective,
            values=values,
            backend="branch-and-bound",
            nodes_explored=nodes,
        )

    # Root relaxation.
    root = _relax(form, form.lower, form.upper, lp_cache)
    if root.status == "infeasible":
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "branch-and-bound", 1)
    if root.status == "unbounded":
        raise UnboundedError(f"model {model.name!r} has an unbounded LP relaxation")

    incumbent_x: np.ndarray | None = None
    incumbent_obj = float("inf")  # minimization convention
    if warm_start is not None:
        incumbent_x, incumbent_obj = _seed_incumbent(model, form, names, warm_start)
    # A proven dual bound from a looser sibling instance tightens every
    # node's bound; -inf when no such knowledge exists.
    bound_floor = (
        form.minimized_from_model_sense(known_bound) if known_bound is not None else float("-inf")
    )

    # Priority queue of (lp bound, tiebreak, lower bounds, upper bounds).
    counter = itertools.count()
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (root.objective, next(counter), form.lower.copy(), form.upper.copy()))
    nodes = 0

    while heap:
        bound, _, lower, upper = heapq.heappop(heap)
        # A node whose bound cannot beat the incumbent prunes the rest of
        # the heap too (best-first order), so we can stop entirely.
        if incumbent_x is not None:
            effective_bound = max(bound, bound_floor)
            relative_gap = (incumbent_obj - effective_bound) / max(1.0, abs(incumbent_obj))
            if relative_gap <= gap:
                if effective_bound > bound:
                    obs.counter("solver.bound_floor.closures").inc()
                return make_solution(SolutionStatus.OPTIMAL, incumbent_obj, incumbent_x, nodes)

        nodes += 1
        if nodes > max_nodes or (deadline is not None and time.monotonic() > deadline):
            if incumbent_x is not None:
                return make_solution(SolutionStatus.FEASIBLE, incumbent_obj, incumbent_x, nodes)
            return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "branch-and-bound", nodes)

        relaxation = _relax(form, lower, upper, lp_cache)
        if not relaxation.is_optimal:
            continue  # infeasible subtree
        if relaxation.objective >= incumbent_obj - 1e-12:
            continue  # cannot improve

        assert relaxation.x is not None
        branch_var = _most_fractional(relaxation.x, integral_indices)
        if branch_var is None:
            snapped = _snapped_if_feasible(form, relaxation.x, integral_indices)
            if snapped is not None:
                # Integral solution: new incumbent, valued at the
                # *snapped* point so the reported objective is exact.
                objective = float(form.c @ snapped)
                if objective < incumbent_obj:
                    incumbent_obj = objective
                    incumbent_x = snapped
                continue
            # Rounding broke a tight row.  Branch on the least-integral
            # variable anyway — both children exclude this LP point, so
            # the search separates the near-integer optimum from its
            # infeasible rounding.  Clip to the node bounds first: a
            # value epsilon *outside* its bound floors onto the bound,
            # which would recreate this very node.
            values = np.clip(
                relaxation.x[integral_indices],
                lower[integral_indices],
                upper[integral_indices],
            )
            fractions = np.abs(values - np.round(values))
            worst = int(np.argmax(fractions))
            if fractions[worst] == 0.0:
                # Exactly integral yet infeasible: the LP itself is out
                # of tolerance (not reachable in practice).  Branching
                # would recreate this node verbatim, so drop it.
                continue
            branch_var = int(integral_indices[worst])

        value = relaxation.x[branch_var]
        floor_val = np.floor(value)
        # Down branch: x <= floor(value)
        down_upper = upper.copy()
        down_upper[branch_var] = floor_val
        if lower[branch_var] <= floor_val:
            heapq.heappush(heap, (relaxation.objective, next(counter), lower.copy(), down_upper))
        # Up branch: x >= ceil(value)
        up_lower = lower.copy()
        up_lower[branch_var] = floor_val + 1.0
        if up_lower[branch_var] <= upper[branch_var]:
            heapq.heappush(heap, (relaxation.objective, next(counter), up_lower, upper.copy()))

    if incumbent_x is not None:
        return make_solution(SolutionStatus.OPTIMAL, incumbent_obj, incumbent_x, nodes)
    return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "branch-and-bound", nodes)
