"""A from-scratch branch-and-bound MILP solver.

Best-first search over LP relaxations: each node fixes tighter bounds on
the integral variables, the LP relaxation provides a dual bound, and
integral LP solutions become incumbents.  Branching selects the integral
variable whose relaxation value is most fractional (closest to 0.5),
which works well on the 0/1 covering structures this library generates.

This backend exists so the reproduction is self-contained — the paper's
methodology relies on an exact solver, and this one proves optimality
without any dependency beyond scipy's LP.  For large instances prefer
the HiGHS backend (:mod:`repro.solver.scipy_backend`); experiment F7
compares the two.
"""

from __future__ import annotations

import heapq
import itertools
import time

import numpy as np

from repro import obs
from repro.errors import UnboundedError
from repro.solver.lp import solve_lp
from repro.solver.model import MilpModel, Solution, SolutionStatus

__all__ = ["solve_branch_and_bound"]

#: Absolute integrality tolerance: relaxation values this close to an
#: integer are treated as integral.
INTEGRALITY_TOLERANCE = 1e-6

#: Relative optimality gap at which the search stops early.
DEFAULT_GAP = 1e-9


def _most_fractional(x: np.ndarray, integral_indices: np.ndarray) -> int | None:
    """Index of the integral variable farthest from any integer, or None."""
    values = x[integral_indices]
    fractions = np.abs(values - np.round(values))
    worst = int(np.argmax(fractions))
    if fractions[worst] <= INTEGRALITY_TOLERANCE:
        return None
    return int(integral_indices[worst])


def solve_branch_and_bound(
    model: MilpModel,
    *,
    time_limit: float | None = None,
    max_nodes: int = 1_000_000,
    gap: float = DEFAULT_GAP,
) -> Solution:
    """Solve ``model`` to proven optimality by branch and bound.

    Parameters
    ----------
    model:
        The MILP to solve.
    time_limit:
        Wall-clock seconds after which the best incumbent is returned
        with status ``FEASIBLE`` (or ``INFEASIBLE`` if none was found).
    max_nodes:
        Hard cap on explored nodes, same fallback behaviour.
    gap:
        Relative optimality gap ``|bound - incumbent| / max(1, |incumbent|)``
        at which the incumbent is accepted as optimal.
    """
    with obs.span("solver.branch_and_bound", model=model.name) as sp:
        solution = _search(model, time_limit, max_nodes, gap, sp)
    sp.set(nodes=solution.nodes_explored)
    obs.counter("solver.solves").inc()
    obs.counter("solver.nodes").inc(solution.nodes_explored)
    obs.histogram("solver.solve_seconds").observe(sp.duration)
    return solution


def _search(
    model: MilpModel, time_limit: float | None, max_nodes: int, gap: float, sp: obs.Span
) -> Solution:
    form = model.compile()
    sp.set(variables=int(form.c.size), rows=int(len(form.b_ub) + len(form.b_eq)))
    names = [v.name for v in model.variables]
    integral_indices = np.flatnonzero(form.integrality)
    deadline = None if time_limit is None else time.monotonic() + time_limit

    def make_solution(status: SolutionStatus, objective_min: float, x: np.ndarray | None, nodes: int) -> Solution:
        values: dict[str, float] = {}
        if x is not None:
            rounded = x.copy()
            rounded[integral_indices] = np.round(rounded[integral_indices])
            values = {name: float(v) for name, v in zip(names, rounded)}
        objective = form.objective_in_model_sense(objective_min) if x is not None else float("nan")
        return Solution(
            status=status,
            objective=objective,
            values=values,
            backend="branch-and-bound",
            nodes_explored=nodes,
        )

    # Root relaxation.
    root = solve_lp(form.c, form.A_ub, form.b_ub, form.A_eq, form.b_eq, form.lower, form.upper)
    if root.status == "infeasible":
        return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "branch-and-bound", 1)
    if root.status == "unbounded":
        raise UnboundedError(f"model {model.name!r} has an unbounded LP relaxation")

    incumbent_x: np.ndarray | None = None
    incumbent_obj = float("inf")  # minimization convention

    # Priority queue of (lp bound, tiebreak, lower bounds, upper bounds).
    counter = itertools.count()
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (root.objective, next(counter), form.lower.copy(), form.upper.copy()))
    nodes = 0

    while heap:
        bound, _, lower, upper = heapq.heappop(heap)
        # A node whose bound cannot beat the incumbent prunes the rest of
        # the heap too (best-first order), so we can stop entirely.
        if incumbent_x is not None:
            relative_gap = (incumbent_obj - bound) / max(1.0, abs(incumbent_obj))
            if relative_gap <= gap:
                return make_solution(SolutionStatus.OPTIMAL, incumbent_obj, incumbent_x, nodes)

        nodes += 1
        if nodes > max_nodes or (deadline is not None and time.monotonic() > deadline):
            if incumbent_x is not None:
                return make_solution(SolutionStatus.FEASIBLE, incumbent_obj, incumbent_x, nodes)
            return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "branch-and-bound", nodes)

        relaxation = solve_lp(form.c, form.A_ub, form.b_ub, form.A_eq, form.b_eq, lower, upper)
        if not relaxation.is_optimal:
            continue  # infeasible subtree
        if relaxation.objective >= incumbent_obj - 1e-12:
            continue  # cannot improve

        assert relaxation.x is not None
        branch_var = _most_fractional(relaxation.x, integral_indices)
        if branch_var is None:
            # Integral solution: new incumbent.
            if relaxation.objective < incumbent_obj:
                incumbent_obj = relaxation.objective
                incumbent_x = relaxation.x
            continue

        value = relaxation.x[branch_var]
        floor_val = np.floor(value)
        # Down branch: x <= floor(value)
        down_upper = upper.copy()
        down_upper[branch_var] = floor_val
        if lower[branch_var] <= floor_val:
            heapq.heappush(heap, (relaxation.objective, next(counter), lower.copy(), down_upper))
        # Up branch: x >= ceil(value)
        up_lower = lower.copy()
        up_lower[branch_var] = floor_val + 1.0
        if up_lower[branch_var] <= upper[branch_var]:
            heapq.heappush(heap, (relaxation.objective, next(counter), up_lower, upper.copy()))

    if incumbent_x is not None:
        return make_solution(SolutionStatus.OPTIMAL, incumbent_obj, incumbent_x, nodes)
    return Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "branch-and-bound", nodes)
