"""CPLEX LP-format export of MILP models.

Writing the model out in the standard LP text format lets users inspect
formulations by eye and solve them with external tools (CPLEX, Gurobi,
``glpsol --lp``, HiGHS standalone) — useful both for debugging the
encoding and for trusting it: the file a commercial solver reads is the
same program the built-in backends solve.

The emitted subset of the format: an objective, ``Subject To``,
``Bounds``, ``General``/``Binary`` sections, ``End``.  Variable names
are sanitized (LP format forbids several characters the library's
``x[monitor@asset]`` convention uses); the mapping is returned so
solutions can be translated back.
"""

from __future__ import annotations

import re

from repro.solver.expressions import ConstraintSense, LinearExpression
from repro.solver.model import MilpModel, ObjectiveSense
from repro.solver.expressions import VarKind

__all__ = ["model_to_lp_string"]

_INVALID = re.compile(r"[^A-Za-z0-9_.]")


def _sanitize_names(model: MilpModel) -> dict[str, str]:
    """Map model variable names to unique LP-safe names."""
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for variable in model.variables:
        candidate = _INVALID.sub("_", variable.name)
        if not candidate or candidate[0].isdigit() or candidate[0] == ".":
            candidate = "v_" + candidate
        base = candidate
        suffix = 1
        while candidate in used:
            suffix += 1
            candidate = f"{base}_{suffix}"
        used.add(candidate)
        mapping[variable.name] = candidate
    return mapping


def _format_expression(expression: LinearExpression, names: dict[str, str]) -> str:
    parts: list[str] = []
    for variable, coefficient in sorted(
        expression.terms.items(), key=lambda item: item[0].index
    ):
        name = names[variable.name]
        sign = "-" if coefficient < 0 else "+"
        magnitude = abs(coefficient)
        if not parts and sign == "+":
            parts.append(f"{magnitude:g} {name}")
        else:
            parts.append(f"{sign} {magnitude:g} {name}")
    return " ".join(parts) if parts else "0 " + names[next(iter(names))]


def model_to_lp_string(model: MilpModel) -> str:
    """Serialize ``model`` to LP format text.

    The objective's constant term is dropped (LP format has no place
    for it); a comment records the offset so objective values can be
    reconciled.
    """
    names = _sanitize_names(model)
    lines: list[str] = [f"\\ model: {model.name}"]
    if model.objective.constant:
        lines.append(f"\\ objective offset (add to solver objective): {model.objective.constant:g}")

    lines.append(
        "Maximize" if model.sense is ObjectiveSense.MAXIMIZE else "Minimize"
    )
    lines.append(f" obj: {_format_expression(model.objective, names)}")

    lines.append("Subject To")
    for index, constraint in enumerate(model.constraints):
        label = _INVALID.sub("_", constraint.name) if constraint.name else f"c{index}"
        operator = {
            ConstraintSense.LE: "<=",
            ConstraintSense.GE: ">=",
            ConstraintSense.EQ: "=",
        }[constraint.sense]
        body = _format_expression(
            LinearExpression(constraint.expression.terms, 0.0), names
        )
        lines.append(f" {label}: {body} {operator} {constraint.rhs:g}")

    lines.append("Bounds")
    for variable in model.variables:
        if variable.kind is VarKind.BINARY:
            continue  # covered by the Binary section
        name = names[variable.name]
        lower = "-inf" if variable.lower == float("-inf") else f"{variable.lower:g}"
        upper = "+inf" if variable.upper == float("inf") else f"{variable.upper:g}"
        lines.append(f" {lower} <= {name} <= {upper}")

    generals = [names[v.name] for v in model.variables if v.kind is VarKind.INTEGER]
    if generals:
        lines.append("General")
        lines.append(" " + " ".join(generals))
    binaries = [names[v.name] for v in model.variables if v.kind is VarKind.BINARY]
    if binaries:
        lines.append("Binary")
        lines.append(" " + " ".join(binaries))

    lines.append("End")
    return "\n".join(lines) + "\n"
