"""The solver fallback chain: try backends in order, remember why.

A campaign that dies because one HiGHS call tripped over a numerical
pathology is a campaign that never reports anything.  The chain tries
each backend in order and answers with the **first viable** one:

* a backend that returns a solution (optimal, feasible, *or* a proven
  INFEASIBLE verdict) answers the chain — infeasibility is a property
  of the model, not a backend failure, so it must stop the chain rather
  than fall through to a solver that would "find" something;
* a backend that raises is recorded (:class:`BackendAttempt`) and the
  next backend gets the same compiled problem;
* :class:`~repro.errors.UnboundedError` propagates immediately — an
  unbounded model is unbounded under every exact backend.

:func:`solve_with_fallback` returns a :class:`FallbackOutcome` carrying
the answering solution plus the full attempt history, so callers (and
the ``solver.fallback.*`` obs counters) can see which backend answered
and why its predecessors failed.  ``solve(model, "fallback")`` routes
through the default chain for callers that only speak backend names —
including every ``--backend`` CLI flag.

Fault-injection sites: each dispatch first pokes
``solver.<backend>`` through :func:`repro.runtime.faults.poke`, which
is how ``tests/faults`` scripts backend crashes and infeasibility
without monkey-patching solver internals.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro import obs
from repro.errors import SolverError, UnboundedError
from repro.runtime import faults
from repro.solver.model import MilpModel, Solution, SolutionStatus

__all__ = [
    "DEFAULT_CHAIN",
    "BackendAttempt",
    "FallbackOutcome",
    "solve_with_fallback",
]

#: Backends the chain tries, in order: the fast production backend
#: first, the dependency-light exact solver as the understudy.
DEFAULT_CHAIN: tuple[str, ...] = ("scipy", "branch-and-bound")


@dataclass(frozen=True, slots=True)
class BackendAttempt:
    """One backend's turn in the chain."""

    backend: str
    answered: bool
    error_type: str = ""
    error: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "answered": self.answered,
            "error_type": self.error_type,
            "error": self.error,
        }


@dataclass(frozen=True, slots=True)
class FallbackOutcome:
    """The chain's answer plus the full attempt history."""

    solution: Solution
    attempts: tuple[BackendAttempt, ...]

    @property
    def backend(self) -> str:
        """The backend that answered."""
        return self.attempts[-1].backend

    @property
    def rescued(self) -> bool:
        """Whether any predecessor failed before a backend answered."""
        return len(self.attempts) > 1

    @property
    def failures(self) -> tuple[BackendAttempt, ...]:
        """The attempts that failed, in chain order."""
        return tuple(a for a in self.attempts if not a.answered)


def solve_with_fallback(
    model: MilpModel,
    backends: Sequence[str] = DEFAULT_CHAIN,
    *,
    time_limit: float | None = None,
    max_nodes: int | None = None,
    gap: float | None = None,
    presolve: bool = False,
    bb_workers: int | None = None,
) -> FallbackOutcome:
    """Solve ``model`` with the first backend in ``backends`` that answers.

    ``max_nodes`` and ``gap`` forward to every backend in the chain that
    understands them, so a presolved-but-still-hard instance degrades by
    gap (status ``FEASIBLE``) instead of erroring out of the chain.
    ``bb_workers`` forwards likewise, so the branch-and-bound understudy
    (or an explicit ``"parallel-bb"`` link) fans its subtree exploration
    out — answers stay bit-identical to the serial understudy's on
    unique-optimum instances either way.
    With ``presolve=True`` the reduction pipeline runs **once**, before
    the chain — every backend then sees the same reduced instance, and
    the answering solution is lifted back to the original space.

    Raises
    ------
    repro.errors.SolverError
        When every backend fails; the message lists each backend's
        error so the chain's history survives into logs.
    repro.errors.UnboundedError
        Immediately — no backend disagrees about unboundedness.
    """
    from repro.solver import solve  # local import: repro.solver re-exports this module
    from repro.solver.presolve import PresolveStatus
    from repro.solver.presolve import presolve as run_presolve

    if not backends:
        raise SolverError("solve_with_fallback needs at least one backend")

    pre = None
    target = model
    if presolve:
        pre = run_presolve(model)
        if pre.status is PresolveStatus.INFEASIBLE:
            solution = Solution(SolutionStatus.INFEASIBLE, float("nan"), {}, "presolve")
            return FallbackOutcome(
                solution=solution, attempts=(BackendAttempt("presolve", True),)
            )
        if pre.status is PresolveStatus.SOLVED:
            values = pre.lift({})
            solution = Solution(
                SolutionStatus.OPTIMAL, model.objective_value(values), values, "presolve"
            )
            return FallbackOutcome(
                solution=solution, attempts=(BackendAttempt("presolve", True),)
            )
        assert pre.reduced is not None
        target = pre.reduced

    attempts: list[BackendAttempt] = []
    with obs.span("solver.fallback", backends=",".join(backends)) as sp:
        for backend in backends:
            obs.counter("solver.fallback.attempts").inc()
            try:
                injected = faults.poke(f"solver.{backend}")
                if injected == "infeasible":
                    solution = Solution(
                        SolutionStatus.INFEASIBLE, float("nan"), {}, backend
                    )
                else:
                    solution = solve(
                        target,
                        backend,
                        time_limit=time_limit,
                        max_nodes=max_nodes,
                        gap=gap,
                        bb_workers=bb_workers,
                    )
            except UnboundedError:
                raise
            except Exception as exc:
                attempts.append(
                    BackendAttempt(
                        backend=backend,
                        answered=False,
                        error_type=type(exc).__name__,
                        error=str(exc),
                    )
                )
                obs.counter("solver.fallback.failures").inc()
                continue
            attempts.append(BackendAttempt(backend=backend, answered=True))
            if len(attempts) > 1:
                obs.counter("solver.fallback.rescues").inc()
            sp.set(answered=backend, failed=len(attempts) - 1)
            if pre is not None:
                solution = pre.lift_solution(solution)
            return FallbackOutcome(solution=solution, attempts=tuple(attempts))
        sp.set(answered="", failed=len(attempts))
    obs.counter("solver.fallback.exhausted").inc()
    history = "; ".join(f"{a.backend}: {a.error_type}: {a.error}" for a in attempts)
    raise SolverError(
        f"every backend in the fallback chain failed for model {model.name!r} ({history})"
    )
