"""Warm-started solve sessions for parameterized MILP families.

A budget sweep, an exact frontier, or a robust per-scenario pass solves
dozens of instances that share one structure and differ in a single
right-hand side or objective.  :class:`SolveSession` exploits that:

* every instance is **presolved** (:mod:`repro.solver.presolve`) so the
  backends only ever see the reduced core;
* instances are grouped into **families** by a structure signature
  (variables + constraint coefficients, right-hand sides and objective
  excluded), and within a family the previous point's solution seeds
  branch-and-bound's incumbent whenever it is still feasible;
* when the new instance is a pure **tightening** of the previous one
  (same objective and rows, right-hand sides and bounds at least as
  tight), the previous proven optimum is a valid dual bound and is
  handed to branch-and-bound as ``known_bound``, closing the gap early;
* LP relaxations are **cached per node signature**, keyed by the
  instance digest, so re-solves of an identical core are nearly free.

Everything here is an acceleration, never a relaxation: feasibility of
a seed is re-validated against the new instance, bounds are only reused
when the tightening check proves they still hold, and presolve is exact
— a session's answer is a proven optimum of the same instance a cold
solve would see (bit-identical when presolve finds nothing to reduce;
a genuinely reduced model may break ties among equally-optimal
deployments differently).  Sessions are not thread-safe and (holding live
model state) do not cross process boundaries; parallel sweeps fall back
to stateless :func:`~repro.solver.presolve.solve_presolved` per worker.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.solver.branch_and_bound import solve_branch_and_bound
from repro.solver.parallel_bb import solve_parallel_branch_and_bound
from repro.solver.model import (
    MilpModel,
    Solution,
    SolutionStatus,
    StandardForm,
)
from repro.solver.presolve import PresolveStatus, presolve
from repro.solver.sparse import digest_update, matrices_equal, matrix_nbytes

__all__ = ["SolveSession", "structure_signature"]

#: LP caches kept per family (one per distinct reduced instance).
MAX_CACHED_INSTANCES = 8

#: Backends that consume warm starts, dual bounds, and LP caches.
_BB_BACKENDS = ("branch-and-bound", "parallel-bb")


def structure_signature(model: MilpModel) -> str:
    """Digest of a model's *structure*: what stays fixed across a family.

    Hashes the objective sense, every variable's name and kind, and
    every constraint's name, sense, and coefficient terms — but not
    right-hand sides and not the objective.  Budget-sweep points,
    frontier cap steps, and per-scenario objective variants therefore
    share a signature, which is exactly the set of instances whose
    solutions can seed each other.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(model.sense.value.encode())
    for v in model.variables:
        h.update(v.name.encode())
        h.update(b"\x00")
        h.update(v.kind.value.encode())
        h.update(b"\x01")
    for constraint in model.constraints:
        h.update(constraint.name.encode())
        h.update(constraint.sense.value.encode())
        for var, coef in sorted(constraint.expression.terms.items(), key=lambda t: t[0].index):
            h.update(var.index.to_bytes(4, "little"))
            h.update(np.float64(coef).tobytes())
        h.update(b"\x02")
    return h.hexdigest()


def _instance_digest(form: StandardForm) -> str:
    """Digest of one concrete instance (structure *and* numbers).

    Delegates matrix hashing to :func:`~repro.solver.sparse.digest_update`,
    which deliberately hashes a CSR matrix differently from an
    equal-valued dense one — LP caches keyed by this digest must never
    be shared across compile flavors.
    """
    h = hashlib.blake2b(digest_size=16)
    for array in (form.c, form.A_ub, form.b_ub, form.A_eq, form.b_eq, form.lower, form.upper):
        digest_update(h, array)
    h.update(b"1" if form.maximize else b"0")
    return h.hexdigest()


def _only_tightened(previous: StandardForm, current: StandardForm) -> bool:
    """Whether ``current`` restricts ``previous``'s feasible set.

    Requires identical objective and constraint matrices; right-hand
    sides and bounds may only move inward.  When true, the previous
    instance's proven optimum bounds the current one (a smaller
    feasible set cannot do better), so it is safe to reuse as a dual
    bound.
    """
    if previous.maximize != current.maximize:
        return False
    if previous.c.shape != current.c.shape or not np.array_equal(previous.c, current.c):
        return False
    if previous.objective_constant != current.objective_constant:
        return False
    if not matrices_equal(previous.A_ub, current.A_ub):
        return False
    if not matrices_equal(previous.A_eq, current.A_eq):
        return False
    if not np.array_equal(previous.b_eq, current.b_eq):
        return False
    return bool(
        np.all(current.b_ub <= previous.b_ub)
        and np.all(current.lower >= previous.lower)
        and np.all(current.upper <= previous.upper)
    )


@dataclass
class _FamilyState:
    """What the session remembers about one structure family."""

    prev_values: dict[str, float] | None = None  # original-space solution
    prev_objective: float | None = None  # model sense
    prev_optimal: bool = False
    prev_form: StandardForm | None = None  # original compiled form
    presolve_futile: bool = False  # last presolve reduced nothing


class SolveSession:
    """Presolve + warm-start state shared across a family of solves.

    Parameters
    ----------
    backend:
        Backend name for the underlying solves.  Branch-and-bound gets
        the full treatment (incumbent seeding, dual-bound reuse, LP
        caching); other backends still benefit from presolve and family
        bookkeeping.
    presolve:
        Run the exact reduction pipeline on every instance (on by
        default — a session exists to amortize sweeps).
    time_limit, max_nodes, gap:
        Default solve controls forwarded to the backend; ``solve`` may
        override them per call.
    bb_workers:
        Worker count for parallel branch-and-bound subtree exploration.
        Routes the ``"parallel-bb"`` backend's fan-out and upgrades
        ``"branch-and-bound"`` to it when greater than 1; either way
        the session's warm starts, dual bounds, and phase-1 LP cache
        apply unchanged, and answers are bit-identical at any count.
    """

    def __init__(
        self,
        backend: str = "scipy",
        *,
        presolve: bool = True,
        time_limit: float | None = None,
        max_nodes: int | None = None,
        gap: float | None = None,
        bb_workers: int | None = None,
    ):
        self.backend = backend
        self.presolve_enabled = presolve
        self.time_limit = time_limit
        self.max_nodes = max_nodes
        self.gap = gap
        self.bb_workers = bb_workers
        self._families: dict[str, _FamilyState] = {}
        # LP-relaxation caches, one per distinct reduced instance (LRU).
        self._lp_caches: OrderedDict[str, dict] = OrderedDict()

    def _lp_cache_for(self, digest: str) -> dict:
        cache = self._lp_caches.get(digest)
        if cache is None:
            cache = {}
            self._lp_caches[digest] = cache
            while len(self._lp_caches) > MAX_CACHED_INSTANCES:
                self._lp_caches.popitem(last=False)
        else:
            self._lp_caches.move_to_end(digest)
        return cache

    # -- public API --------------------------------------------------------

    @property
    def family_count(self) -> int:
        """How many structure families this session has seen."""
        return len(self._families)

    def estimated_bytes(self) -> int:
        """Rough footprint of the session's warm state, in bytes.

        Exact accounting for the numpy payloads (previous compiled
        forms, the dominant term on large models) plus flat per-entry
        estimates for the Python-object overhead of recorded solutions
        and LP-relaxation cache entries.  Consumed by the service's
        LRU-by-bytes cache (:mod:`repro.service.cache`); the absolute
        scale matters less than growing monotonically with retained
        state, which the test suite pins.
        """
        total = 0
        for family in self._families.values():
            if family.prev_values is not None:
                total += 80 * len(family.prev_values)
            form = family.prev_form
            if form is not None:
                # matrix_nbytes counts a CSR matrix's data/indices/indptr
                # payload, not the dense rows x vars its shape implies.
                total += sum(
                    matrix_nbytes(array)
                    for array in (
                        form.c,
                        form.A_ub,
                        form.b_ub,
                        form.A_eq,
                        form.b_eq,
                        form.lower,
                        form.upper,
                        form.integrality,
                    )
                )
        for cache in self._lp_caches.values():
            total += 512 * max(1, len(cache))
        return total

    def solve(
        self,
        model: MilpModel,
        *,
        time_limit: float | None = None,
        max_nodes: int | None = None,
        gap: float | None = None,
        family_key: str | None = None,
    ) -> Solution:
        """Solve ``model``, reusing whatever its family has already proven.

        ``family_key`` names the model's structure family directly,
        skipping the :func:`structure_signature` hash.  Callers that
        manage families themselves (:class:`~repro.optimize.family.
        ProblemFamily`) pass a stable key; correctness does not hinge on
        it, because seeds are re-validated, dual bounds are only reused
        after the tightening proof, and the LP cache is content-keyed.
        """
        obs.counter("solver.session.solves").inc()
        time_limit = self.time_limit if time_limit is None else time_limit
        max_nodes = self.max_nodes if max_nodes is None else max_nodes
        gap = self.gap if gap is None else gap
        with obs.span("solver.session.solve", model=model.name, backend=self.backend):
            key = family_key if family_key is not None else structure_signature(model)
            family = self._families.setdefault(key, _FamilyState())
            # The compiled form is only consumed by branch-and-bound's
            # tightening check (_reusable_bound); other backends skip
            # the bookkeeping compile entirely and record form=None.
            form = model.compile() if self.backend in _BB_BACKENDS else None

            if self.presolve_enabled and family.presolve_futile:
                # The family's last presolve reduced nothing.  Skipping
                # the pipeline is always exact (presolve is purely an
                # acceleration), and rhs-only changes rarely unlock
                # reductions a structurally identical sibling lacked —
                # so the session stops paying for futile presolves.
                obs.counter("solver.session.presolve_skips").inc()
                target, lift = model, None
            elif self.presolve_enabled:
                pre = presolve(model)
                family.presolve_futile = (
                    pre.status is PresolveStatus.REDUCED
                    and pre.stats.columns_after == pre.stats.columns_before
                    and pre.stats.rows_after == pre.stats.rows_before
                )
                if pre.status is PresolveStatus.INFEASIBLE:
                    return Solution(
                        SolutionStatus.INFEASIBLE, float("nan"), {}, "presolve"
                    )
                if pre.status is PresolveStatus.SOLVED:
                    values = pre.lift({})
                    solution = Solution(
                        SolutionStatus.OPTIMAL,
                        model.objective_value(values),
                        values,
                        "presolve",
                    )
                    self._record(family, form, solution)
                    return solution
                assert pre.reduced is not None
                target, lift = pre.reduced, pre
            else:
                target, lift = model, None

            warm = known = None
            if self.backend in _BB_BACKENDS:
                # Only branch-and-bound consumes seeds and dual bounds;
                # computing (and counting) them for other backends would
                # make the session stats lie.
                warm = self._project_seed(family, target)
                known = self._reusable_bound(family, form)
            solution = self._dispatch(target, warm, known, time_limit, max_nodes, gap)
            if lift is not None:
                solution = lift.lift_solution(solution)
            self._record(family, form, solution)
            return solution

    # -- internals ---------------------------------------------------------

    def _project_seed(
        self, family: _FamilyState, target: MilpModel
    ) -> dict[str, float] | None:
        """The previous solution restricted to the target's variables.

        Restriction is sound because presolve only ever *fixes*
        variables to forced values: a previous solution feasible in the
        new original instance restricts to a feasible reduced solution
        (branch-and-bound re-validates either way).
        """
        if family.prev_values is None:
            return None
        try:
            seed = {v.name: family.prev_values[v.name] for v in target.variables}
        except KeyError:
            obs.counter("solver.session.incumbent_rejected").inc()
            return None
        obs.counter("solver.session.incumbent_seeds").inc()
        return seed

    def _reusable_bound(self, family: _FamilyState, form: StandardForm) -> float | None:
        """The previous optimum, when it still bounds this instance."""
        if (
            family.prev_optimal
            and family.prev_objective is not None
            and family.prev_form is not None
            and _only_tightened(family.prev_form, form)
        ):
            obs.counter("solver.session.bound_reuses").inc()
            return family.prev_objective
        return None

    def _dispatch(
        self,
        target: MilpModel,
        warm: dict[str, float] | None,
        known: float | None,
        time_limit: float | None,
        max_nodes: int | None,
        gap: float | None,
    ) -> Solution:
        if self.backend in _BB_BACKENDS:
            kwargs: dict[str, object] = {}
            if max_nodes is not None:
                kwargs["max_nodes"] = max_nodes
            if gap is not None:
                kwargs["gap"] = gap
            lp_cache = self._lp_cache_for(_instance_digest(target.compile()))
            parallel = self.backend == "parallel-bb" or (
                self.bb_workers is not None and self.bb_workers > 1
            )
            if parallel:
                return solve_parallel_branch_and_bound(
                    target,
                    workers=self.bb_workers,
                    time_limit=time_limit,
                    warm_start=warm,
                    known_bound=known,
                    lp_cache=lp_cache,
                    **kwargs,
                )
            return solve_branch_and_bound(
                target,
                time_limit=time_limit,
                warm_start=warm,
                known_bound=known,
                lp_cache=lp_cache,
                **kwargs,
            )
        from repro.solver import solve

        return solve(
            target, self.backend, time_limit=time_limit, max_nodes=max_nodes, gap=gap
        )

    def _record(
        self, family: _FamilyState, form: StandardForm | None, solution: Solution
    ) -> None:
        if not solution.values or solution.status not in (
            SolutionStatus.OPTIMAL,
            SolutionStatus.FEASIBLE,
        ):
            return
        family.prev_values = dict(solution.values)
        family.prev_objective = solution.objective
        family.prev_optimal = solution.status is SolutionStatus.OPTIMAL
        family.prev_form = form
