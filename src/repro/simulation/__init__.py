"""Operational validation: discrete-event monitoring simulation.

Static metrics predict what a deployment *should* see; this package
checks what it *does* see.  Attack campaigns execute on a discrete-
event kernel, deployed monitors record steps imperfectly (per-type
quality, latency), an evidence-accumulation detector raises verdicts,
and a forensic scorer measures how completely each run can be
reconstructed afterwards.  Experiment F5 uses these results to show
that model-predicted utility tracks simulated detection and
reconstruction quality.
"""

from repro.simulation.campaign import CampaignResult, RunOutcome, run_campaign
from repro.simulation.detector import (
    DEFAULT_DETECTION_THRESHOLD,
    EvidenceAccumulationDetector,
    SequencedEvidenceDetector,
)
from repro.simulation.engine import Simulator
from repro.simulation.forensics import ForensicReport, reconstruct
from repro.simulation.observation import ObservationModel
from repro.simulation.records import Detection, Observation, StepOccurrence
from repro.simulation.trace import (
    jsonl_to_observations,
    load_trace,
    observations_to_jsonl,
    save_trace,
)

__all__ = [
    "jsonl_to_observations",
    "load_trace",
    "observations_to_jsonl",
    "save_trace",
    "CampaignResult",
    "RunOutcome",
    "run_campaign",
    "DEFAULT_DETECTION_THRESHOLD",
    "EvidenceAccumulationDetector",
    "SequencedEvidenceDetector",
    "Simulator",
    "ForensicReport",
    "reconstruct",
    "ObservationModel",
    "Detection",
    "Observation",
    "StepOccurrence",
]
