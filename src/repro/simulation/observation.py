"""The observation model: what deployed monitors record about attacks.

For every attack-step occurrence, each deployed monitor that can
evidence the step's event (per the model's coverage relation) records
it independently with probability equal to its monitor type's
``quality``, after a small processing latency.  Records carry the
evidence weight and the contributing data fields, which is what the
detector scores and the forensic report counts.

All randomness flows through a caller-supplied
:class:`numpy.random.Generator`, so campaigns are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import SystemModel
from repro.simulation.records import Observation, StepOccurrence

__all__ = ["ObservationModel"]


class ObservationModel:
    """Generates monitor observations for attack-step occurrences."""

    def __init__(
        self,
        model: SystemModel,
        deployed: frozenset[str],
        rng: np.random.Generator,
        *,
        mean_latency: float = 0.5,
    ):
        self.model = model
        self.deployed = deployed
        self.rng = rng
        self.mean_latency = mean_latency
        # Precompute, per event, the deployed monitors able to evidence it
        # with their quality and evidence details — observation generation
        # is the hot loop of a campaign.
        self._watchers: dict[str, list[tuple[str, float, float, frozenset[str], str]]] = {}
        for event_id in model.events:
            watchers = []
            for monitor_id, weight in model.monitors_for_event(event_id).items():
                if monitor_id not in deployed:
                    continue
                monitor = model.monitor(monitor_id)
                quality = model.monitor_type(monitor.monitor_type_id).quality
                data_types = model.evidencing_data_types(monitor_id, event_id)
                # Report through the best-weight data type; fields union
                # over all evidencing data types of this monitor.
                fields = frozenset().union(
                    *(model.evidence_fields(dt, event_id) for dt in data_types)
                )
                best_dt = max(data_types)  # deterministic representative
                watchers.append((monitor_id, quality, weight, fields, best_dt))
            self._watchers[event_id] = watchers

    def observe(
        self, step: StepOccurrence, failed: frozenset[str] = frozenset()
    ) -> list[Observation]:
        """Observations generated for one step occurrence.

        Each watching monitor records independently with probability
        ``quality``; recorded observations get an exponential latency
        with mean ``mean_latency``.  Monitors in ``failed`` are down for
        this occurrence and record nothing (campaign failure injection).
        """
        observations: list[Observation] = []
        for monitor_id, quality, weight, fields, data_type_id in self._watchers[step.event_id]:
            if monitor_id in failed:
                continue  # the monitor is down
            if self.rng.random() >= quality:
                continue  # the monitor missed this occurrence
            latency = float(self.rng.exponential(self.mean_latency))
            observations.append(
                Observation(
                    run_id=step.run_id,
                    monitor_id=monitor_id,
                    data_type_id=data_type_id,
                    event_id=step.event_id,
                    attack_id=step.attack_id,
                    time=step.time + latency,
                    weight=weight,
                    fields=fields,
                )
            )
        return observations

    def benign_noise_volume(self, duration: float) -> float:
        """Expected number of benign records the deployment generates.

        Scales each deployed monitor's data types by their
        ``volume_hint`` (records/hour).  This is the analyst-load side
        of the cost story: richer deployments observe more, benign
        records included.
        """
        total = 0.0
        for monitor_id in self.deployed:
            monitor = self.model.monitor(monitor_id)
            mtype = self.model.monitor_type(monitor.monitor_type_id)
            for data_type_id in mtype.data_type_ids:
                total += self.model.data_type(data_type_id).volume_hint * duration / 3600.0
        return total
