"""Campaign trace export: observations as JSON-lines log records.

Downstream forensic tooling consumes *logs*, not Python objects.  This
module serializes a campaign's observation stream (one JSON object per
line, time-ordered) and loads it back — so simulated evidence can feed
external correlation pipelines, or a saved trace can be re-scored with
:func:`repro.simulation.forensics.reconstruct` without re-running the
campaign.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.errors import SerializationError
from repro.export.jsonsafe import dumps as _strict_dumps
from repro.simulation.campaign import CampaignResult
from repro.simulation.records import Observation

__all__ = ["observations_to_jsonl", "jsonl_to_observations", "save_trace", "load_trace"]


def observations_to_jsonl(observations: Iterable[Observation]) -> str:
    """Serialize observations, time-ordered, one JSON object per line."""
    ordered = sorted(observations, key=lambda o: (o.time, o.run_id, o.monitor_id))
    lines = [
        _strict_dumps(
            {
                "time": o.time,
                "run": o.run_id,
                "monitor": o.monitor_id,
                "data_type": o.data_type_id,
                "event": o.event_id,
                "attack": o.attack_id,
                "weight": o.weight,
                "fields": sorted(o.fields),
            },
            sort_keys=True,
        )
        for o in ordered
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def jsonl_to_observations(text: str) -> list[Observation]:
    """Parse a trace produced by :func:`observations_to_jsonl`.

    Raises
    ------
    repro.errors.SerializationError
        On malformed lines, with the offending line number.
    """
    observations: list[Observation] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            observations.append(
                Observation(
                    run_id=record["run"],
                    monitor_id=record["monitor"],
                    data_type_id=record["data_type"],
                    event_id=record["event"],
                    attack_id=record["attack"],
                    time=record["time"],
                    weight=record["weight"],
                    fields=frozenset(record.get("fields", ())),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise SerializationError(f"malformed trace line {line_number}: {exc}") from exc
    return observations


def save_trace(campaign: CampaignResult, path: str | Path) -> int:
    """Write a campaign's observation records to ``path`` as JSONL.

    Requires the campaign to have been run with
    ``keep_observations=True``; returns the number of records written.
    """
    if campaign.observations and not campaign.records:
        raise SerializationError(
            "campaign has no retained records; rerun run_campaign(..., "
            "keep_observations=True) to export a trace"
        )
    Path(path).write_text(observations_to_jsonl(campaign.records))
    return len(campaign.records)


def load_trace(path: str | Path) -> list[Observation]:
    """Read a trace previously written by :func:`save_trace`."""
    return jsonl_to_observations(Path(path).read_text())
