"""Attack-campaign simulation: the operational validation harness.

:func:`run_campaign` executes every attack in the model (``repetitions``
times each) against a monitor deployment on the discrete-event kernel:

1. each attack run schedules its steps in order with random inter-step
   gaps;
2. the :class:`~repro.simulation.observation.ObservationModel` turns
   steps into (possibly missed) monitor records after a latency;
3. the :class:`~repro.simulation.detector.EvidenceAccumulationDetector`
   consumes records as they arrive and emits detections;
4. afterwards, each run is scored forensically.

The resulting :class:`CampaignResult` reports detection rate, detection
latency, and reconstruction completeness — the operational quantities
that experiment F5 correlates with the static utility metric.

Multi-seed studies go through :func:`run_campaigns`, which replays the
same campaign under a list of seeds and can fan the independent replays
out over :func:`~repro.runtime.parallel.parallel_map`; each seed's
result is identical however many workers run it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.core.model import SystemModel
from repro.errors import SimulationError
from repro.optimize.deployment import Deployment
from repro.runtime.parallel import parallel_map
from repro.runtime.pool import PersistentPool
from repro.runtime.resilience import MapReport, RetryPolicy
from repro.simulation.detector import (
    DEFAULT_DETECTION_THRESHOLD,
    EvidenceAccumulationDetector,
    SequencedEvidenceDetector,
)
from repro.simulation.engine import Simulator
from repro.simulation.forensics import ForensicReport, reconstruct
from repro.simulation.observation import ObservationModel
from repro.simulation.records import Detection, Observation, StepOccurrence

__all__ = ["CampaignResult", "RunOutcome", "run_campaign", "run_campaigns"]


@dataclass(frozen=True)
class RunOutcome:
    """What happened to one attack run."""

    run_id: int
    attack_id: str
    detected: bool
    detection_time: float | None
    final_score: float
    forensics: ForensicReport


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of a full attack campaign."""

    runs: tuple[RunOutcome, ...]
    detections: tuple[Detection, ...]
    observations: int
    benign_noise_volume: float
    duration: float
    seed: int
    per_attack_detection: dict[str, float] = field(default_factory=dict)
    #: Raw observation records, populated only when ``run_campaign`` is
    #: called with ``keep_observations=True`` (trace export).
    records: tuple[Observation, ...] = ()

    @property
    def detection_rate(self) -> float:
        """Fraction of runs detected."""
        if not self.runs:
            return 0.0
        return sum(1 for r in self.runs if r.detected) / len(self.runs)

    @property
    def mean_detection_latency(self) -> float:
        """Mean time from run start to detection, over detected runs."""
        latencies = [r.detection_time for r in self.runs if r.detection_time is not None]
        return float(np.mean(latencies)) if latencies else float("nan")

    @property
    def mean_step_completeness(self) -> float:
        """Mean forensic step completeness over all runs."""
        if not self.runs:
            return 0.0
        return float(np.mean([r.forensics.step_completeness for r in self.runs]))

    @property
    def mean_field_completeness(self) -> float:
        """Mean forensic field completeness over all runs."""
        if not self.runs:
            return 0.0
        return float(np.mean([r.forensics.field_completeness for r in self.runs]))


def run_campaign(
    model: SystemModel,
    deployment: Deployment,
    *,
    repetitions: int = 10,
    seed: int = 0,
    threshold: float = DEFAULT_DETECTION_THRESHOLD,
    mean_step_gap: float = 30.0,
    mean_observation_latency: float = 0.5,
    monitor_failure_rate: float = 0.0,
    keep_observations: bool = False,
    sequenced: bool = False,
) -> CampaignResult:
    """Simulate every attack against ``deployment`` and score the outcome.

    Parameters
    ----------
    repetitions:
        Number of runs per attack in the model.
    seed:
        Seed for all campaign randomness (step timing, monitor misses,
        latencies, failures); identical seeds reproduce identical
        campaigns.
    threshold:
        Detector threshold on the realized-coverage score.
    mean_step_gap:
        Mean exponential gap between consecutive steps of a run.
    mean_observation_latency:
        Mean exponential monitor processing latency.
    monitor_failure_rate:
        Per-run probability that each deployed monitor is down for the
        entirety of that run (failure injection, experiment F8).
    keep_observations:
        Retain the raw observation records on the result (``records``)
        for trace export; off by default to keep campaigns lightweight.
    sequenced:
        Use the kill-chain-ordered
        :class:`~repro.simulation.detector.SequencedEvidenceDetector`
        instead of plain evidence accumulation.
    """
    if repetitions < 1:
        raise SimulationError(f"repetitions must be >= 1, got {repetitions!r}")
    if deployment.model is not model:
        raise SimulationError("deployment was built for a different model")
    if not 0.0 <= monitor_failure_rate <= 1.0:
        raise SimulationError(
            f"monitor_failure_rate must lie in [0, 1], got {monitor_failure_rate!r}"
        )

    with obs.span(
        "simulation.campaign", seed=seed, attacks=len(model.attacks), repetitions=repetitions
    ) as sp:
        result = _run(
            model,
            deployment,
            repetitions,
            seed,
            threshold,
            mean_step_gap,
            mean_observation_latency,
            monitor_failure_rate,
            keep_observations,
            sequenced,
        )
        sp.set(runs=len(result.runs), detections=len(result.detections))
    obs.counter("simulation.campaigns").inc()
    obs.counter("simulation.runs").inc(len(result.runs))
    obs.counter("simulation.detections").inc(len(result.detections))
    latency_histogram = obs.histogram(
        "simulation.detection_latency_seconds", obs.DETECTION_LATENCY_BUCKETS
    )
    for run in result.runs:
        if run.detection_time is not None:
            latency_histogram.observe(run.detection_time)
    return result


def _run(
    model: SystemModel,
    deployment: Deployment,
    repetitions: int,
    seed: int,
    threshold: float,
    mean_step_gap: float,
    mean_observation_latency: float,
    monitor_failure_rate: float,
    keep_observations: bool,
    sequenced: bool,
) -> CampaignResult:
    rng = np.random.default_rng(seed)
    simulator = Simulator()
    observer = ObservationModel(
        model, deployment.monitor_ids, rng, mean_latency=mean_observation_latency
    )
    detector_class = SequencedEvidenceDetector if sequenced else EvidenceAccumulationDetector
    detector = detector_class(model, threshold)

    observations: list[Observation] = []
    run_start: dict[int, float] = {}
    run_attack: dict[int, str] = {}
    run_failures: dict[int, frozenset[str]] = {}
    deployed_list = sorted(deployment.monitor_ids)

    def on_observation(sim: Simulator, observation: Observation) -> None:
        observations.append(observation)
        detector.consume(observation)

    def on_step(sim: Simulator, step: StepOccurrence) -> None:
        failed = run_failures[step.run_id]
        for observation in observer.observe(step, failed):
            sim.schedule(max(0.0, observation.time - sim.now), on_observation, observation)

    # Schedule every run's steps up front; runs interleave in time.
    run_id = 0
    for attack in model.attacks.values():
        for _ in range(repetitions):
            if monitor_failure_rate > 0.0 and deployed_list:
                down = rng.random(len(deployed_list)) < monitor_failure_rate
                run_failures[run_id] = frozenset(
                    m for m, is_down in zip(deployed_list, down) if is_down
                )
            else:
                run_failures[run_id] = frozenset()
            start = float(rng.uniform(0.0, 3600.0))
            run_start[run_id] = start
            run_attack[run_id] = attack.attack_id
            t = start
            for index, step in enumerate(attack.steps):
                t += float(rng.exponential(mean_step_gap))
                occurrence = StepOccurrence(
                    run_id=run_id,
                    attack_id=attack.attack_id,
                    event_id=step.event_id,
                    asset_id=model.event(step.event_id).asset_id,
                    time=t,
                    step_index=index,
                )
                simulator.schedule_at(t, on_step, occurrence)
            run_id += 1

    duration = simulator.run()

    detection_by_run = {d.run_id: d for d in detector.detections}
    outcomes: list[RunOutcome] = []
    for rid in range(run_id):
        attack_id = run_attack[rid]
        detection = detection_by_run.get(rid)
        outcomes.append(
            RunOutcome(
                run_id=rid,
                attack_id=attack_id,
                detected=detection is not None,
                detection_time=(
                    None if detection is None else detection.time - run_start[rid]
                ),
                final_score=detector.score_of(rid, attack_id),
                forensics=reconstruct(model, rid, attack_id, observations),
            )
        )

    per_attack: dict[str, float] = {}
    for attack_id in model.attacks:
        attack_runs = [o for o in outcomes if o.attack_id == attack_id]
        per_attack[attack_id] = (
            sum(1 for o in attack_runs if o.detected) / len(attack_runs) if attack_runs else 0.0
        )

    return CampaignResult(
        runs=tuple(outcomes),
        detections=tuple(detector.detections),
        observations=len(observations),
        benign_noise_volume=observer.benign_noise_volume(duration),
        duration=duration,
        seed=seed,
        per_attack_detection=per_attack,
        records=tuple(observations) if keep_observations else (),
    )


def _campaign_job(
    task: tuple[SystemModel, frozenset[str], int, dict[str, object]],
) -> CampaignResult:
    """One seed's campaign, self-contained for worker processes.

    The deployment travels as a bare monitor-id set and is rebuilt
    against the (possibly unpickled) model copy, restoring the identity
    :func:`run_campaign` insists on.
    """
    model, monitor_ids, seed, kwargs = task
    deployment = Deployment.of(model, monitor_ids)
    return run_campaign(model, deployment, seed=seed, **kwargs)


def run_campaigns(
    model: SystemModel,
    deployment: Deployment,
    *,
    seeds: Sequence[int],
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
    pool: PersistentPool | None = None,
    **kwargs: object,
) -> list[CampaignResult]:
    """Run the same campaign under each seed, optionally in parallel.

    Every keyword accepted by :func:`run_campaign` (except ``seed``)
    passes through unchanged.  Results come back in ``seeds`` order and
    each one is bit-identical to ``run_campaign(model, deployment,
    seed=s, ...)`` run serially — replays only share the model, never
    random state, so worker scheduling cannot leak between them.
    ``policy`` adds per-seed timeouts/retries (see
    :class:`~repro.runtime.resilience.RetryPolicy`); under
    ``on_failure="skip"`` the skipped seeds' results are absent and
    their positions listed in ``report.skipped``.

    Multi-campaign studies (deployment comparisons, failure-rate
    sweeps) should hold one :class:`~repro.runtime.pool.PersistentPool`
    across their calls — ``pool=`` here, or ambiently via
    :func:`~repro.runtime.pool.use_pool` — so pool startup is paid once
    per study instead of once per call.
    """
    if not seeds:
        raise SimulationError("run_campaigns needs at least one seed")
    if deployment.model is not model:
        raise SimulationError("deployment was built for a different model")
    return parallel_map(
        _campaign_job,
        [(model, deployment.monitor_ids, int(seed), dict(kwargs)) for seed in seeds],
        workers=workers,
        policy=policy,
        report=report,
        pool=pool,
    )
