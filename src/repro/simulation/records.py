"""Record types flowing through the monitoring simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepOccurrence", "Observation", "Detection"]


@dataclass(frozen=True, slots=True)
class StepOccurrence:
    """An attack step actually happening during a scenario run."""

    run_id: int
    attack_id: str
    event_id: str
    asset_id: str
    time: float
    step_index: int


@dataclass(frozen=True, slots=True)
class Observation:
    """A record emitted by a deployed monitor about an attack step.

    ``weight`` is the evidence strength of the (data type, event) link
    that produced the record; ``fields`` are the data fields the record
    carries about the step.
    """

    run_id: int
    monitor_id: str
    data_type_id: str
    event_id: str
    attack_id: str
    time: float
    weight: float
    fields: frozenset[str] = field(default_factory=frozenset)


@dataclass(frozen=True, slots=True)
class Detection:
    """A detector verdict: an attack run crossed the evidence threshold."""

    run_id: int
    attack_id: str
    time: float
    score: float
    contributing_monitors: frozenset[str]
