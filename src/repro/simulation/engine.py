"""A minimal discrete-event simulation kernel.

The monitoring simulation needs deterministic, ordered execution of
timestamped events (attack steps firing, monitors emitting records,
detectors updating scores).  This kernel provides exactly that: a
priority queue of scheduled callbacks with a monotonically advancing
clock and stable FIFO ordering for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import Any

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[["Simulator", Any], None], Any]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    def schedule(
        self,
        delay: float,
        handler: Callable[["Simulator", Any], None],
        payload: Any = None,
    ) -> None:
        """Schedule ``handler(sim, payload)`` after ``delay`` time units.

        Events at equal times run in scheduling (FIFO) order, which
        keeps runs deterministic.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(self._heap, (self._now + delay, next(self._sequence), handler, payload))

    def schedule_at(
        self,
        time: float,
        handler: Callable[["Simulator", Any], None],
        payload: Any = None,
    ) -> None:
        """Schedule at an absolute time (must not be before ``now``)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, simulation clock is already at {self._now!r}"
            )
        heapq.heappush(self._heap, (time, next(self._sequence), handler, payload))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later (the clock is
            advanced to ``until``).  ``None`` drains the queue.
        max_events:
            Safety cap on processed events.

        Returns
        -------
        float
            The simulation time at stop.
        """
        processed_this_run = 0
        while self._heap:
            time, _, handler, payload = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            if max_events is not None and processed_this_run >= max_events:
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            handler(self, payload)
            self._processed += 1
            processed_this_run += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now
