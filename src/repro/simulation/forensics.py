"""Forensic reconstruction scoring.

After an incident, analysts reconstruct the attack from whatever the
deployed monitors recorded.  This module scores that reconstruction per
attack run:

* **step completeness** — weighted fraction of the attack's steps with
  at least one observation (can the timeline be reconstructed?);
* **field completeness** — fraction of the fields that a full
  deployment could have captured about the attack's events that were
  actually captured (how much detail does each timeline entry carry?).

Field completeness is the operational counterpart of the static
richness metric, just as the detector's score mirrors coverage.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.model import SystemModel
from repro.simulation.records import Observation

__all__ = ["ForensicReport", "reconstruct"]


@dataclass(frozen=True)
class ForensicReport:
    """Reconstruction quality of one attack run."""

    run_id: int
    attack_id: str
    steps_observed: int
    steps_total: int
    step_completeness: float
    field_completeness: float
    observations: int

    @property
    def is_complete(self) -> bool:
        """Whether every step left at least one observation."""
        return self.steps_observed == self.steps_total


def reconstruct(
    model: SystemModel,
    run_id: int,
    attack_id: str,
    observations: Iterable[Observation],
) -> ForensicReport:
    """Score the reconstruction of one attack run from its observations."""
    attack = model.attack(attack_id)
    relevant = [
        o for o in observations if o.run_id == run_id and o.attack_id == attack_id
    ]
    observed_events: dict[str, set[str]] = {}
    for observation in relevant:
        observed_events.setdefault(observation.event_id, set()).update(observation.fields)

    observed_steps = sum(1 for step in attack.steps if step.event_id in observed_events)
    weighted_observed = sum(
        step.weight for step in attack.steps if step.event_id in observed_events
    )
    step_completeness = weighted_observed / attack.total_step_weight

    capturable = 0
    captured = 0
    for step in attack.steps:
        max_fields = model.max_fields_for_event(step.event_id)
        capturable += len(max_fields)
        captured += len(observed_events.get(step.event_id, set()) & max_fields)
    field_completeness = captured / capturable if capturable else 0.0

    return ForensicReport(
        run_id=run_id,
        attack_id=attack_id,
        steps_observed=observed_steps,
        steps_total=len(attack.steps),
        step_completeness=step_completeness,
        field_completeness=field_completeness,
        observations=len(relevant),
    )
