"""Evidence-accumulation intrusion detector.

The detector consumes the observation stream and maintains, per attack
run, a realized-coverage score: the step-weighted sum of the best
observed evidence weight per step, normalized by the attack's total
step weight (the operational analogue of the static coverage metric).
When a run's score crosses ``threshold``, a :class:`Detection` verdict
is emitted — once per run.
"""

from __future__ import annotations

from repro import obs
from repro.core.model import SystemModel
from repro.simulation.records import Detection, Observation

__all__ = [
    "EvidenceAccumulationDetector",
    "SequencedEvidenceDetector",
    "DEFAULT_DETECTION_THRESHOLD",
]

#: A run counts as detected once half its weighted steps are evidenced.
DEFAULT_DETECTION_THRESHOLD = 0.5


class EvidenceAccumulationDetector:
    """Stateful detector over a stream of observations."""

    def __init__(self, model: SystemModel, threshold: float = DEFAULT_DETECTION_THRESHOLD):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"detection threshold must lie in (0, 1], got {threshold!r}")
        self.model = model
        self.threshold = threshold
        # (run, attack) -> {event -> best observed weight}
        self._best_weight: dict[tuple[int, str], dict[str, float]] = {}
        self._contributors: dict[tuple[int, str], set[str]] = {}
        self._detections: dict[tuple[int, str], Detection] = {}

    def consume(self, observation: Observation) -> Detection | None:
        """Feed one observation; returns a verdict on threshold crossing."""
        key = (observation.run_id, observation.attack_id)
        if key in self._detections:
            return None  # already detected
        best = self._best_weight.setdefault(key, {})
        previous = best.get(observation.event_id, 0.0)
        if observation.weight > previous:
            best[observation.event_id] = observation.weight
        self._contributors.setdefault(key, set()).add(observation.monitor_id)

        score = self._score(observation.attack_id, best)
        if score >= self.threshold:
            detection = Detection(
                run_id=observation.run_id,
                attack_id=observation.attack_id,
                time=observation.time,
                score=score,
                contributing_monitors=frozenset(self._contributors[key]),
            )
            self._detections[key] = detection
            # Emission only — per-observation registry traffic would
            # dominate this otherwise dict-bound hot path.
            obs.counter("detector.detections").inc()
            obs.histogram("detector.score", obs.SCORE_BUCKETS).observe(score)
            return detection
        return None

    def _score(self, attack_id: str, best_weights: dict[str, float]) -> float:
        attack = self.model.attack(attack_id)
        realized = sum(
            step.weight * best_weights.get(step.event_id, 0.0) for step in attack.steps
        )
        return realized / attack.total_step_weight

    # -- results ----------------------------------------------------------

    @property
    def detections(self) -> list[Detection]:
        """All verdicts emitted so far, in consumption order."""
        return list(self._detections.values())

    def score_of(self, run_id: int, attack_id: str) -> float:
        """Current realized-coverage score of a run (0 if nothing seen)."""
        best = self._best_weight.get((run_id, attack_id), {})
        return self._score(attack_id, best) if best else 0.0

    def was_detected(self, run_id: int, attack_id: str) -> bool:
        """Whether the run crossed the threshold."""
        return (run_id, attack_id) in self._detections


class SequencedEvidenceDetector(EvidenceAccumulationDetector):
    """Kill-chain-ordered variant of the evidence-accumulation detector.

    Real correlation rules demand *causal* chains: a database dump is
    suspicious after an injection request, much less so in isolation.
    This detector credits a step's evidence only when **every earlier
    required step** of the attack has also been evidenced; the first
    unevidenced required step zeroes out everything after it.

    Consequences (benchmarked in F12): never more sensitive than the
    unordered detector, strictly less on deployments with early-chain
    blind spots — which is exactly the argument for covering
    reconnaissance steps even though they carry little weight.
    """

    def _score(self, attack_id: str, best_weights: dict[str, float]) -> float:
        attack = self.model.attack(attack_id)
        realized = 0.0
        for step in attack.steps:
            observed = best_weights.get(step.event_id, 0.0)
            if observed > 0.0:
                realized += step.weight * observed
            elif step.required:
                break  # the chain is not established past this point
        return realized / attack.total_step_weight
