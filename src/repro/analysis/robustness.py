"""Robustness of deployments to monitor failures and compromise.

The redundancy term in the utility function exists because monitors
fail — crash, get misconfigured, or get disabled by the attacker they
are supposed to observe.  This module quantifies that story statically:

* :func:`expected_utility_under_failures` — Monte-Carlo expectation of
  utility when each deployed monitor is independently down with a given
  probability (random faults);
* :func:`worst_case_utility` — utility after an adversary disables the
  ``k`` monitors whose loss hurts most (targeted compromise); exact for
  small ``k``, greedy beyond;
* :func:`robustness_curve` — worst-case utility as ``k`` grows.

Experiment F8 pairs these with the campaign simulator's failure
injection to show that redundancy-aware optimal deployments degrade
more gracefully than coverage-only ones at equal budget.

All subset evaluations run on the runtime substrate's vectorized
:class:`~repro.runtime.engine.EvaluationEngine`; the exact adversary
enumerates thousands of k-subsets, so the array path dominates its
wall-clock.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.model import SystemModel
from repro.errors import MetricError
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment
from repro.runtime.engine import engine_for

__all__ = [
    "expected_utility_under_failures",
    "worst_case_utility",
    "robustness_curve",
]

#: Above this many candidate subsets the adversary falls back to greedy.
_EXACT_SUBSET_LIMIT = 20_000


def expected_utility_under_failures(
    model: SystemModel,
    deployment: Deployment,
    failure_rate: float,
    weights: UtilityWeights | None = None,
    *,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Mean utility when each monitor is independently down with ``failure_rate``."""
    if not 0.0 <= failure_rate <= 1.0:
        raise MetricError(f"failure_rate must lie in [0, 1], got {failure_rate!r}")
    if samples < 1:
        raise MetricError(f"samples must be >= 1, got {samples!r}")
    weights = weights or UtilityWeights()
    engine = engine_for(model)
    monitor_ids = sorted(deployment.monitor_ids)
    if not monitor_ids or failure_rate == 0.0:
        return engine.utility(deployment.monitor_ids, weights)
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(samples):
        up = rng.random(len(monitor_ids)) >= failure_rate
        alive = {m for m, alive_flag in zip(monitor_ids, up) if alive_flag}
        total += engine.utility(alive, weights)
    return total / samples


def worst_case_utility(
    model: SystemModel,
    deployment: Deployment,
    k: int,
    weights: UtilityWeights | None = None,
) -> tuple[float, frozenset[str]]:
    """Utility after an adversary disables the worst ``k`` monitors.

    Returns ``(utility, disabled set)``.  Exact (exhaustive over all
    k-subsets) when the subset count is small; otherwise greedy —
    iteratively removing the single monitor whose loss hurts most —
    which upper-bounds the true worst case.
    """
    if k < 0:
        raise MetricError(f"k must be >= 0, got {k!r}")
    weights = weights or UtilityWeights()
    engine = engine_for(model)
    monitor_ids = sorted(deployment.monitor_ids)
    k = min(k, len(monitor_ids))
    if k == 0:
        return engine.utility(deployment.monitor_ids, weights), frozenset()

    if math.comb(len(monitor_ids), k) <= _EXACT_SUBSET_LIMIT:
        worst_value = float("inf")
        worst_set: frozenset[str] = frozenset()
        base = set(monitor_ids)
        for disabled in itertools.combinations(monitor_ids, k):
            value = engine.utility(base - set(disabled), weights)
            if value < worst_value:
                worst_value = value
                worst_set = frozenset(disabled)
        return worst_value, worst_set

    # Greedy adversary for large deployments.
    alive = set(monitor_ids)
    disabled: set[str] = set()
    for _ in range(k):
        victim = min(
            sorted(alive),
            key=lambda m: engine.utility(alive - {m}, weights),
        )
        alive.remove(victim)
        disabled.add(victim)
    return engine.utility(alive, weights), frozenset(disabled)


def robustness_curve(
    model: SystemModel,
    deployment: Deployment,
    max_k: int,
    weights: UtilityWeights | None = None,
) -> list[tuple[int, float]]:
    """Worst-case utility for every ``k`` in ``0..max_k`` (non-increasing)."""
    weights = weights or UtilityWeights()
    return [
        (k, worst_case_utility(model, deployment, k, weights)[0])
        for k in range(max_k + 1)
    ]
