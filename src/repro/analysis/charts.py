"""ASCII charts: figure-shaped output without a plotting dependency.

The paper's evaluation is figures; this environment has no matplotlib.
:func:`render_chart` plots one or more (x, y) series on a character
grid with axes, tick labels, and a legend — enough to *see* the curve
shapes (concavity, crossovers, separation) directly in benchmark output
and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_chart"]

#: Per-series glyphs, assigned in series order; later series win cell conflicts.
_GLYPHS = "*o+x#@%&"


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.3g}"


def render_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter chart.

    Axes are scaled to the union of all series; each series gets a
    glyph from ``* o + x …`` in iteration order, listed in the legend.
    Empty input renders an annotated empty frame rather than raising.
    """
    if width < 10 or height < 4:
        raise ValueError(f"chart needs width >= 10 and height >= 4, got {width}x{height}")

    points = [(x, y) for pts in series.values() for x, y in pts]
    lines: list[str] = []
    if title:
        lines.append(title)

    if not points:
        lines.append("(no data)")
        return "\n".join(lines)

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = glyph

    top_tick = _format_tick(y_max)
    bottom_tick = _format_tick(y_min)
    margin = max(len(top_tick), len(bottom_tick), len(y_label)) + 1

    lines.append(f"{y_label:>{margin}}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick
        elif row_index == height - 1:
            label = bottom_tick
        else:
            label = ""
        lines.append(f"{label:>{margin}} |{''.join(row)}")
    lines.append(f"{'':>{margin}} +{'-' * width}")
    left_tick = _format_tick(x_min)
    right_tick = _format_tick(x_max)
    gap = width - len(left_tick) - len(right_tick)
    lines.append(f"{'':>{margin}}  {left_tick}{' ' * max(1, gap)}{right_tick}")
    lines.append(f"{'':>{margin}}  {x_label}")

    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{margin}}  legend: {legend}")
    return "\n".join(lines)
