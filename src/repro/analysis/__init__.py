"""Evaluation reports, sensitivity/robustness/contribution analysis,
and table rendering."""

from repro.analysis.charts import render_chart
from repro.analysis.comparison import (
    AttackDelta,
    DeploymentComparison,
    compare_deployments,
)
from repro.analysis.contribution import (
    MonitorValue,
    add_one_in,
    contribution_report,
    leave_one_out,
    shapley_values,
)
from repro.analysis.evaluation import AttackAssessment, DeploymentReport, evaluate_deployment
from repro.analysis.gaps import CandidateFix, Gap, find_gaps, gap_report
from repro.analysis.robustness import (
    expected_utility_under_failures,
    robustness_curve,
    worst_case_utility,
)
from repro.analysis.sensitivity import SensitivityPoint, jaccard, weight_sensitivity
from repro.analysis.tables import format_value, render_table

__all__ = [
    "render_chart",
    "AttackDelta",
    "DeploymentComparison",
    "compare_deployments",
    "MonitorValue",
    "add_one_in",
    "contribution_report",
    "leave_one_out",
    "shapley_values",
    "AttackAssessment",
    "DeploymentReport",
    "evaluate_deployment",
    "CandidateFix",
    "Gap",
    "find_gaps",
    "gap_report",
    "expected_utility_under_failures",
    "robustness_curve",
    "worst_case_utility",
    "SensitivityPoint",
    "jaccard",
    "weight_sensitivity",
    "format_value",
    "render_table",
]
