"""Fixed-width text tables for experiment output.

The benchmark harnesses print the same rows the paper's tables report;
this module renders them consistently without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, precision: int = 3) -> str:
    """Human-friendly cell formatting: floats rounded, others ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render a fixed-width table with a header rule.

    Numeric columns (every body cell int/float) are right-aligned,
    text columns left-aligned.
    """
    formatted = [[format_value(cell, precision) for cell in row] for row in rows]
    columns = len(headers)
    for row in formatted:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}: {row!r}")

    numeric = [
        all(isinstance(row[i], (int, float)) and not isinstance(row[i], bool) for row in rows)
        if rows
        else False
        for i in range(columns)
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in formatted)) if formatted else len(headers[i])
        for i in range(columns)
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
