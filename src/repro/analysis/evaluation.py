"""Full evaluation reports for a monitor deployment.

:func:`evaluate_deployment` gathers every static metric — per-attack
and aggregate coverage, redundancy, richness, confidence, the combined
utility, and multi-dimensional cost — into one structured report, with
optional operational validation by simulation.  This is the paper's
"evaluate monitor deployments quantitatively" entry point for users who
bring their own deployments instead of optimizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import SystemModel
from repro.metrics.confidence import attack_confidence, overall_confidence
from repro.metrics.coverage import (
    attack_coverage,
    detectable_attacks,
    fully_covered_attacks,
    overall_coverage,
)
from repro.metrics.redundancy import attack_redundancy, overall_redundancy
from repro.metrics.richness import attack_richness, overall_richness
from repro.metrics.utility import UtilityWeights, utility
from repro.optimize.deployment import Deployment
from repro.simulation.campaign import CampaignResult, run_campaign
from repro.analysis.tables import render_table

__all__ = ["AttackAssessment", "DeploymentReport", "evaluate_deployment"]


@dataclass(frozen=True)
class AttackAssessment:
    """Per-attack metric values under a deployment."""

    attack_id: str
    name: str
    importance: float
    coverage: float
    redundancy: float
    richness: float
    confidence: float
    fully_covered: bool
    detectable: bool


@dataclass(frozen=True)
class DeploymentReport:
    """Everything the methodology says about one deployment."""

    deployment: Deployment
    weights: UtilityWeights
    utility: float
    coverage: float
    redundancy: float
    richness: float
    confidence: float
    cost: dict[str, float]
    attacks: tuple[AttackAssessment, ...]
    campaign: CampaignResult | None = None

    @property
    def fully_covered_count(self) -> int:
        """Number of attacks with every required step covered."""
        return sum(1 for a in self.attacks if a.fully_covered)

    @property
    def detectable_count(self) -> int:
        """Number of attacks with at least one covered step."""
        return sum(1 for a in self.attacks if a.detectable)

    def to_text(self) -> str:
        """Render the report as fixed-width tables."""
        summary = render_table(
            ["metric", "value"],
            [
                ["monitors deployed", len(self.deployment)],
                ["utility", self.utility],
                ["coverage", self.coverage],
                ["redundancy", self.redundancy],
                ["richness", self.richness],
                ["confidence", self.confidence],
                ["attacks fully covered", f"{self.fully_covered_count}/{len(self.attacks)}"],
                ["attacks detectable", f"{self.detectable_count}/{len(self.attacks)}"],
            ],
            title=f"Deployment report — {self.deployment.model.name}",
        )
        cost = render_table(
            ["dimension", "spend"],
            sorted(self.cost.items()),
            title="Cost",
        )
        per_attack = render_table(
            ["attack", "imp", "cov", "red", "rich", "conf", "full", "any"],
            [
                [a.attack_id, a.importance, a.coverage, a.redundancy, a.richness,
                 a.confidence, a.fully_covered, a.detectable]
                for a in self.attacks
            ],
            title="Per-attack assessment",
        )
        sections = [summary, cost, per_attack]
        if self.campaign is not None:
            sections.append(
                render_table(
                    ["campaign metric", "value"],
                    [
                        ["runs", len(self.campaign.runs)],
                        ["detection rate", self.campaign.detection_rate],
                        ["mean detection latency (s)", self.campaign.mean_detection_latency],
                        ["step completeness", self.campaign.mean_step_completeness],
                        ["field completeness", self.campaign.mean_field_completeness],
                    ],
                    title="Simulated campaign",
                )
            )
        return "\n\n".join(sections)


def evaluate_deployment(
    model: SystemModel,
    deployment: Deployment,
    weights: UtilityWeights | None = None,
    *,
    simulate: bool = False,
    repetitions: int = 10,
    seed: int = 0,
) -> DeploymentReport:
    """Compute the full metric report for ``deployment``.

    With ``simulate=True`` an attack campaign additionally validates the
    deployment operationally (deterministic for a fixed ``seed``).
    """
    weights = weights or UtilityWeights()
    deployed = deployment.monitor_ids
    fully = fully_covered_attacks(model, deployed)
    detectable = detectable_attacks(model, deployed)

    assessments = tuple(
        AttackAssessment(
            attack_id=attack.attack_id,
            name=attack.name,
            importance=attack.importance,
            coverage=attack_coverage(model, deployed, attack),
            redundancy=attack_redundancy(model, deployed, attack, weights.redundancy_cap),
            richness=attack_richness(model, deployed, attack),
            confidence=attack_confidence(model, deployed, attack),
            fully_covered=attack.attack_id in fully,
            detectable=attack.attack_id in detectable,
        )
        for attack in model.attacks.values()
    )

    campaign = (
        run_campaign(model, deployment, repetitions=repetitions, seed=seed)
        if simulate
        else None
    )

    return DeploymentReport(
        deployment=deployment,
        weights=weights,
        utility=utility(model, deployed, weights),
        coverage=overall_coverage(model, deployed),
        redundancy=overall_redundancy(model, deployed, weights.redundancy_cap),
        richness=overall_richness(model, deployed),
        confidence=overall_confidence(model, deployed),
        cost=deployment.cost().as_dict(),
        attacks=assessments,
        campaign=campaign,
    )
