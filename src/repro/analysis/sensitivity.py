"""Sensitivity analysis of optimal deployments to utility weights.

The utility weights encode an organization's priorities; a deployment
that flips completely when a weight moves a few points is fragile
advice.  :func:`weight_sensitivity` re-optimizes across a grid of
weightings and reports how the optimal deployment changes —
monitor-set stability (Jaccard similarity to the baseline optimum) and
the achieved component values.  Experiment F2 is a one-dimensional
slice of this analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import SystemModel
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.optimize.problem import MaxUtilityProblem

__all__ = ["SensitivityPoint", "weight_sensitivity", "jaccard"]


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard similarity of two monitor sets (1.0 when both empty)."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass(frozen=True)
class SensitivityPoint:
    """One weighting and the optimal deployment it induces."""

    weights: UtilityWeights
    monitor_ids: frozenset[str]
    utility: float
    coverage: float
    redundancy: float
    richness: float
    similarity_to_baseline: float


def weight_sensitivity(
    model: SystemModel,
    budget: Budget,
    weightings: list[UtilityWeights],
    *,
    baseline: UtilityWeights | None = None,
    backend: str = "scipy",
) -> list[SensitivityPoint]:
    """Optimal deployments across ``weightings``, compared to a baseline.

    The baseline (default: library default weights) is solved first;
    every point reports the Jaccard similarity of its optimal monitor
    set to the baseline's.
    """
    baseline = baseline or UtilityWeights()
    baseline_result = MaxUtilityProblem(model, budget, baseline).solve(backend)
    baseline_ids = baseline_result.monitor_ids

    points: list[SensitivityPoint] = []
    for weights in weightings:
        result = MaxUtilityProblem(model, budget, weights).solve(backend)
        breakdown = result.deployment.breakdown(weights)
        points.append(
            SensitivityPoint(
                weights=weights,
                monitor_ids=result.monitor_ids,
                utility=result.utility,
                coverage=breakdown["coverage"],
                redundancy=breakdown["redundancy"],
                richness=breakdown["richness"],
                similarity_to_baseline=jaccard(result.monitor_ids, baseline_ids),
            )
        )
    return points
