"""Coverage-gap analysis: where a deployment is blind, and what fixes it.

After optimization (or for a hand-built deployment) the operational
question is concrete: *which attack steps can we still not see, and
what is the cheapest monitor that would change that?*  This module
answers it per event:

* events with **zero** coverage under the deployment (blind spots);
* events covered only **weakly** (below a threshold);
* for each gap, the candidate monitors that would close it, ranked by
  evidence weight per unit of scalarized cost;
* roll-ups per attack so triage can follow attack importance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import SystemModel
from repro.metrics.coverage import event_coverage
from repro.optimize.deployment import Deployment

__all__ = ["Gap", "CandidateFix", "find_gaps", "gap_report"]


@dataclass(frozen=True)
class CandidateFix:
    """An undeployed monitor that would raise an event's coverage."""

    monitor_id: str
    new_coverage: float
    scalar_cost: float

    @property
    def coverage_per_cost(self) -> float:
        """Coverage gained per unit cost (inf for free monitors)."""
        if self.scalar_cost == 0:
            return float("inf") if self.new_coverage > 0 else 0.0
        return self.new_coverage / self.scalar_cost


@dataclass(frozen=True)
class Gap:
    """One under-covered event, with context and ranked fixes."""

    event_id: str
    asset_id: str
    current_coverage: float
    attacks: frozenset[str]
    max_importance: float
    fixes: tuple[CandidateFix, ...]

    @property
    def is_blind_spot(self) -> bool:
        """Whether the event is entirely unobserved."""
        return self.current_coverage == 0.0

    @property
    def fixable(self) -> bool:
        """Whether any undeployed monitor would improve coverage."""
        return bool(self.fixes)


def find_gaps(
    model: SystemModel,
    deployment: Deployment,
    *,
    threshold: float = 0.5,
) -> list[Gap]:
    """Events whose coverage under ``deployment`` is below ``threshold``.

    Only events that belong to at least one attack are considered
    (covering an event no attack uses buys nothing).  Gaps are sorted
    worst-first: blind spots before weak coverage, higher-importance
    attacks first.
    """
    deployed = deployment.monitor_ids
    gaps: list[Gap] = []
    for event_id, event in model.events.items():
        attacks = model.attacks_using_event(event_id)
        if not attacks:
            continue
        current = event_coverage(model, deployed, event_id)
        if current >= threshold:
            continue

        fixes = []
        for monitor_id, weight in model.monitors_for_event(event_id).items():
            if monitor_id in deployed or weight <= current:
                continue
            fixes.append(
                CandidateFix(
                    monitor_id=monitor_id,
                    new_coverage=weight,
                    scalar_cost=model.monitor_cost(monitor_id).scalarize(),
                )
            )
        fixes.sort(key=lambda f: (-f.coverage_per_cost, f.monitor_id))

        gaps.append(
            Gap(
                event_id=event_id,
                asset_id=event.asset_id,
                current_coverage=current,
                attacks=attacks,
                max_importance=max(model.attack(a).importance for a in attacks),
                fixes=tuple(fixes),
            )
        )

    gaps.sort(key=lambda g: (g.current_coverage, -g.max_importance, g.event_id))
    return gaps


def gap_report(
    model: SystemModel,
    deployment: Deployment,
    *,
    threshold: float = 0.5,
    max_fixes: int = 2,
) -> str:
    """Text report of the coverage gaps, worst first."""
    from repro.analysis.tables import render_table

    gaps = find_gaps(model, deployment, threshold=threshold)
    if not gaps:
        return f"No events below coverage {threshold} — no gaps to report."

    rows = []
    for gap in gaps:
        best_fixes = ", ".join(
            f"{fix.monitor_id} (->{fix.new_coverage:.2f} @ {fix.scalar_cost:.0f})"
            for fix in gap.fixes[:max_fixes]
        )
        rows.append(
            [
                gap.event_id,
                gap.asset_id,
                gap.current_coverage,
                gap.max_importance,
                len(gap.attacks),
                best_fixes or "(none available)",
            ]
        )
    return render_table(
        ["event", "asset", "coverage", "worst imp.", "#attacks", "best fixes"],
        rows,
        title=(
            f"Coverage gaps below {threshold} — {len(gaps)} events, "
            f"{sum(1 for g in gaps if g.is_blind_spot)} blind spots"
        ),
    )
