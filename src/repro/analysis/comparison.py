"""Side-by-side comparison of two deployments.

Every lifecycle workflow — rebalancing, robust-vs-nominal, before/after
a budget change — ends with the question "what actually changed, and
did it matter?".  :func:`compare_deployments` answers it structurally:
monitor-set diff, per-dimension cost delta, per-metric delta, and the
per-attack coverage movements that explain them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.metrics.coverage import attack_coverage
from repro.metrics.utility import UtilityWeights, utility_breakdown
from repro.optimize.deployment import Deployment

__all__ = ["AttackDelta", "DeploymentComparison", "compare_deployments"]


@dataclass(frozen=True)
class AttackDelta:
    """Coverage movement of one attack between two deployments."""

    attack_id: str
    importance: float
    coverage_a: float
    coverage_b: float

    @property
    def delta(self) -> float:
        """Coverage change from A to B (positive: B sees more)."""
        return self.coverage_b - self.coverage_a


@dataclass(frozen=True)
class DeploymentComparison:
    """Structured diff between deployments A and B on one model."""

    a: Deployment
    b: Deployment
    weights: UtilityWeights
    added: frozenset[str]        # in B, not in A
    removed: frozenset[str]      # in A, not in B
    kept: frozenset[str]
    cost_delta: dict[str, float]  # B spend minus A spend, per dimension
    metric_a: dict[str, float]
    metric_b: dict[str, float]
    attack_deltas: tuple[AttackDelta, ...]

    @property
    def churn(self) -> int:
        """Number of monitors changed in either direction."""
        return len(self.added) + len(self.removed)

    @property
    def utility_delta(self) -> float:
        """Utility change from A to B."""
        return self.metric_b["utility"] - self.metric_a["utility"]

    def regressions(self, tolerance: float = 1e-9) -> list[AttackDelta]:
        """Attacks B covers strictly worse than A, worst first."""
        worse = [d for d in self.attack_deltas if d.delta < -tolerance]
        return sorted(worse, key=lambda d: d.delta)

    def to_text(self) -> str:
        """Render the comparison as fixed-width tables."""
        from repro.analysis.tables import render_table

        summary = render_table(
            ["metric", "A", "B", "delta"],
            [
                [name, self.metric_a[name], self.metric_b[name],
                 self.metric_b[name] - self.metric_a[name]]
                for name in ("coverage", "redundancy", "richness", "utility")
            ],
            title=(
                f"Deployment comparison — A: {len(self.a)} monitors, "
                f"B: {len(self.b)} monitors, churn {self.churn}"
            ),
        )
        changes = []
        for monitor_id in sorted(self.added):
            changes.append(["+ " + monitor_id])
        for monitor_id in sorted(self.removed):
            changes.append(["- " + monitor_id])
        change_table = render_table(
            ["monitor changes (B relative to A)"],
            changes or [["(none)"]],
        )
        movers = [d for d in self.attack_deltas if abs(d.delta) > 1e-9]
        movers.sort(key=lambda d: d.delta)
        attack_table = render_table(
            ["attack", "imp", "cov A", "cov B", "delta"],
            [
                [d.attack_id, d.importance, d.coverage_a, d.coverage_b, d.delta]
                for d in movers
            ]
            or [["(no coverage changes)", "", "", "", ""]],
            title="Attack coverage movements",
        )
        return "\n\n".join([summary, change_table, attack_table])


def compare_deployments(
    a: Deployment,
    b: Deployment,
    weights: UtilityWeights | None = None,
) -> DeploymentComparison:
    """Compare two deployments of the **same** model."""
    if a.model is not b.model:
        raise OptimizationError("can only compare deployments of the same model")
    model = a.model
    weights = weights or UtilityWeights()

    cost_a = a.cost()
    cost_b = b.cost()
    dimensions = cost_a.dimensions | cost_b.dimensions
    cost_delta = {dim: cost_b.get(dim) - cost_a.get(dim) for dim in sorted(dimensions)}

    attack_deltas = tuple(
        AttackDelta(
            attack_id=attack.attack_id,
            importance=attack.importance,
            coverage_a=attack_coverage(model, a.monitor_ids, attack),
            coverage_b=attack_coverage(model, b.monitor_ids, attack),
        )
        for attack in model.attacks.values()
    )

    return DeploymentComparison(
        a=a,
        b=b,
        weights=weights,
        added=b.monitor_ids - a.monitor_ids,
        removed=a.monitor_ids - b.monitor_ids,
        kept=a.monitor_ids & b.monitor_ids,
        cost_delta=cost_delta,
        metric_a=utility_breakdown(model, a.monitor_ids, weights),
        metric_b=utility_breakdown(model, b.monitor_ids, weights),
        attack_deltas=attack_deltas,
    )
