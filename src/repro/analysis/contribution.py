"""Per-monitor contribution analysis: what is each monitor worth?

Optimal deployments are sets; operators reason about individual
monitors ("can we drop the NIDS?", "what would the DB audit add?").
This module decomposes a deployment's utility into per-monitor terms:

* **leave-one-out** value — utility lost by dropping a selected monitor
  (its criticality within this deployment);
* **add-one-in** value — utility gained by adding an unselected monitor
  (the next-best spend);
* **Shapley value** (sampled) — the average marginal contribution over
  random orderings, the principled way to split credit among monitors
  with overlapping evidence.

Leave-one-out undervalues redundant monitors (dropping one of a
corroborating pair loses little, dropping both loses the step), which
is precisely what the Shapley decomposition corrects.

Evaluations run on the runtime substrate: leave-one-out and add-one-in
probes go through the shared per-model evaluation cache, and Shapley
sampling walks each permutation on an incremental
:class:`~repro.runtime.engine.DeploymentCursor`.  Sampling is organised
in fixed-size chunks, each seeded from its own spawned
:class:`numpy.random.SeedSequence`, so the estimate is identical
whether the chunks run serially or across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import SystemModel
from repro.errors import MetricError
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import Deployment
from repro.runtime.cache import cached_utility
from repro.runtime.engine import engine_for
from repro.runtime.parallel import parallel_map, spawn_seeds
from repro.runtime.resilience import MapReport, RetryPolicy

__all__ = [
    "MonitorValue",
    "leave_one_out",
    "add_one_in",
    "shapley_values",
    "contribution_report",
]

#: Samples per Shapley chunk.  Fixed (not derived from the worker count)
#: so the chunk boundaries — and therefore every chunk's random stream —
#: are a function of ``(samples, seed)`` alone.
SHAPLEY_CHUNK = 32


@dataclass(frozen=True)
class MonitorValue:
    """One monitor's contribution figure within/against a deployment."""

    monitor_id: str
    value: float
    scalar_cost: float

    @property
    def value_per_cost(self) -> float:
        """Contribution per unit of scalarized cost (inf for free monitors)."""
        if self.scalar_cost == 0:
            return float("inf") if self.value > 0 else 0.0
        return self.value / self.scalar_cost


def leave_one_out(
    model: SystemModel,
    deployment: Deployment,
    weights: UtilityWeights | None = None,
) -> list[MonitorValue]:
    """Utility lost by dropping each selected monitor, descending.

    A value of zero means the deployment's utility does not depend on
    that monitor at all (fully shadowed by the rest).
    """
    weights = weights or UtilityWeights()
    base = cached_utility(model, deployment.monitor_ids, weights)
    values = [
        MonitorValue(
            monitor_id=monitor_id,
            value=base
            - cached_utility(model, deployment.monitor_ids - {monitor_id}, weights),
            scalar_cost=model.monitor_cost(monitor_id).scalarize(),
        )
        for monitor_id in deployment.monitor_ids
    ]
    return sorted(values, key=lambda v: (-v.value, v.monitor_id))


def add_one_in(
    model: SystemModel,
    deployment: Deployment,
    weights: UtilityWeights | None = None,
) -> list[MonitorValue]:
    """Utility gained by adding each *unselected* monitor, descending."""
    weights = weights or UtilityWeights()
    base = cached_utility(model, deployment.monitor_ids, weights)
    values = [
        MonitorValue(
            monitor_id=monitor_id,
            value=cached_utility(model, deployment.monitor_ids | {monitor_id}, weights)
            - base,
            scalar_cost=model.monitor_cost(monitor_id).scalarize(),
        )
        for monitor_id in model.monitors
        if monitor_id not in deployment.monitor_ids
    ]
    return sorted(values, key=lambda v: (-v.value, v.monitor_id))


def _shapley_chunk(
    task: tuple[SystemModel, tuple[str, ...], UtilityWeights, int, np.random.SeedSequence],
) -> list[float]:
    """Summed marginal contributions over one chunk of permutations.

    Returns per-monitor totals aligned with the ``monitor_ids`` tuple.
    Runs in worker processes, so everything arrives through the task
    tuple and the engine is (re)built from the pickled model copy.
    """
    model, monitor_ids, weights, chunk_samples, seed_seq = task
    engine = engine_for(model)
    rng = np.random.default_rng(seed_seq)
    totals = np.zeros(len(monitor_ids))
    for _ in range(chunk_samples):
        order = rng.permutation(len(monitor_ids))
        cursor = engine.cursor(weights)
        previous = 0.0
        for index in order:
            cursor.add(monitor_ids[index])
            current = cursor.utility()
            totals[index] += current - previous
            previous = current
    return totals.tolist()


def shapley_values(
    model: SystemModel,
    deployment: Deployment,
    weights: UtilityWeights | None = None,
    *,
    samples: int = 200,
    seed: int = 0,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
) -> list[MonitorValue]:
    """Monte-Carlo Shapley decomposition of the deployment's utility.

    Averages each monitor's marginal contribution over ``samples``
    random orderings of the deployment.  The values sum (up to sampling
    noise) to the deployment's total utility — an identity the test
    suite checks.  Sampling happens in fixed chunks of
    :data:`SHAPLEY_CHUNK` permutations with per-chunk spawned seeds and
    the chunk totals are summed in chunk order, so the result depends
    only on ``(samples, seed)`` — never on ``workers``.

    ``policy`` adds per-chunk timeouts/retries, but
    ``on_failure="skip"`` is rejected: every chunk is a fixed share of
    the permutation sample, so silently dropping one would bias the
    estimator while still dividing by ``samples``.
    """
    if samples < 1:
        raise MetricError(f"samples must be >= 1, got {samples!r}")
    if policy is not None and policy.on_failure == "skip":
        raise MetricError(
            "shapley_values cannot run under on_failure='skip': a dropped "
            "chunk would silently bias the estimate; use 'raise' or 'degrade'"
        )
    weights = weights or UtilityWeights()
    monitor_ids = tuple(sorted(deployment.monitor_ids))
    if not monitor_ids:
        return []

    chunk_sizes = [SHAPLEY_CHUNK] * (samples // SHAPLEY_CHUNK)
    if samples % SHAPLEY_CHUNK:
        chunk_sizes.append(samples % SHAPLEY_CHUNK)
    seed_seqs = spawn_seeds(seed, len(chunk_sizes))
    tasks = [
        (model, monitor_ids, weights, size, seq)
        for size, seq in zip(chunk_sizes, seed_seqs)
    ]
    chunk_totals = parallel_map(
        _shapley_chunk, tasks, workers=workers, policy=policy, report=report
    )

    totals = np.zeros(len(monitor_ids))
    for chunk in chunk_totals:
        totals += np.asarray(chunk)

    values = [
        MonitorValue(
            monitor_id=monitor_id,
            value=totals[index] / samples,
            scalar_cost=model.monitor_cost(monitor_id).scalarize(),
        )
        for index, monitor_id in enumerate(monitor_ids)
    ]
    return sorted(values, key=lambda v: (-v.value, v.monitor_id))


def contribution_report(
    model: SystemModel,
    deployment: Deployment,
    weights: UtilityWeights | None = None,
    *,
    shapley_samples: int = 200,
    seed: int = 0,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    report: MapReport | None = None,
) -> str:
    """Text report combining leave-one-out and Shapley views.

    ``policy``/``report`` pass through to :func:`shapley_values`, with
    the same rejection of ``on_failure="skip"``.
    """
    from repro.analysis.tables import render_table

    weights = weights or UtilityWeights()
    loo = {v.monitor_id: v for v in leave_one_out(model, deployment, weights)}
    shapley = shapley_values(
        model,
        deployment,
        weights,
        samples=shapley_samples,
        seed=seed,
        workers=workers,
        policy=policy,
        report=report,
    )
    rows = [
        [
            v.monitor_id,
            v.value,
            loo[v.monitor_id].value,
            v.scalar_cost,
            v.value_per_cost,
        ]
        for v in shapley
    ]
    return render_table(
        ["monitor", "shapley", "leave-one-out", "cost", "shapley/cost"],
        rows,
        precision=4,
        title=f"Monitor contributions — utility {deployment.utility(weights):.4f}",
    )
