"""CSV export of evaluation results.

Experiment pipelines end in spreadsheets more often than anyone admits;
these helpers emit the per-attack assessment and sweep results as CSV
text (stdlib ``csv``, written to a string or a path).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Annotation-only: a runtime import here would close the cycle
    # analysis -> simulation -> export -> csv_export -> analysis, which
    # breaks `import repro.cli` (analysis is still mid-import).
    from repro.analysis.evaluation import DeploymentReport
    from repro.optimize.pareto import SweepPoint

__all__ = ["report_to_csv", "sweep_to_csv", "write_csv"]


def _render(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def report_to_csv(report: DeploymentReport) -> str:
    """The per-attack assessment of a deployment report as CSV text."""
    rows = [
        [
            a.attack_id,
            a.name,
            a.importance,
            a.coverage,
            a.redundancy,
            a.richness,
            a.confidence,
            int(a.fully_covered),
            int(a.detectable),
        ]
        for a in report.attacks
    ]
    return _render(
        [
            "attack_id",
            "name",
            "importance",
            "coverage",
            "redundancy",
            "richness",
            "confidence",
            "fully_covered",
            "detectable",
        ],
        rows,
    )


def sweep_to_csv(points: Iterable[SweepPoint]) -> str:
    """A budget sweep as CSV text (one row per budget fraction)."""
    rows = [
        [
            p.fraction,
            len(p.result.deployment),
            p.result.utility,
            p.scalar_cost,
            p.result.solve_seconds,
            p.result.method,
            int(p.result.optimal),
        ]
        for p in points
    ]
    return _render(
        ["budget_fraction", "monitors", "utility", "scalar_cost", "solve_seconds",
         "method", "optimal"],
        rows,
    )


def write_csv(text: str, path: str | Path) -> None:
    """Write CSV text produced by the exporters to ``path``."""
    Path(path).write_text(text)
