"""Self-contained HTML rendering of deployment reports.

Security reviews circulate as documents; :func:`report_to_html` turns a
:class:`~repro.analysis.evaluation.DeploymentReport` into a single HTML
file — no external assets, inline CSS, metric bars rendered as styled
divs — suitable for attaching to a change ticket or review thread.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Annotation-only: a runtime import would close the
    # analysis -> simulation -> export -> html -> analysis cycle.
    from repro.analysis.evaluation import DeploymentReport

__all__ = ["report_to_html"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.9rem; }
th, td { text-align: left; padding: 0.35rem 0.6rem;
         border-bottom: 1px solid #e0e0e8; }
th { background: #f4f4f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { background: #e8e8f0; border-radius: 3px; height: 0.75rem;
       width: 8rem; display: inline-block; vertical-align: middle; }
.bar > span { display: block; height: 100%; border-radius: 3px;
              background: #4361ee; }
.bar.warn > span { background: #e07a5f; }
.tag { font-size: 0.75rem; padding: 0.1rem 0.4rem; border-radius: 3px; }
.tag.ok { background: #d8f3dc; color: #1b4332; }
.tag.bad { background: #ffe5e5; color: #9d0208; }
.muted { color: #6c757d; font-size: 0.85rem; }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value))


def _bar(fraction: float, warn_below: float = 0.0) -> str:
    fraction = max(0.0, min(1.0, fraction))
    warn = " warn" if fraction < warn_below else ""
    width = f"{fraction * 100:.1f}%"
    return (
        f'<span class="bar{warn}"><span style="width:{width}"></span></span> '
        f'<span class="muted">{fraction:.3f}</span>'
    )


def report_to_html(report: DeploymentReport, *, title: str | None = None) -> str:
    """Render ``report`` as a complete, self-contained HTML document."""
    model = report.deployment.model
    title = title or f"Monitor deployment report — {model.name}"

    summary_rows = "\n".join(
        f"<tr><th>{_esc(name)}</th><td>{_bar(value)}</td></tr>"
        for name, value in (
            ("Utility", report.utility),
            ("Coverage", report.coverage),
            ("Redundancy", report.redundancy),
            ("Richness", report.richness),
            ("Confidence", report.confidence),
        )
    )

    cost_rows = "\n".join(
        f"<tr><td>{_esc(dim)}</td><td class='num'>{value:g}</td></tr>"
        for dim, value in sorted(report.cost.items())
    )

    monitor_rows = "\n".join(
        f"<tr><td>{_esc(monitor_id)}</td>"
        f"<td>{_esc(model.monitor(monitor_id).asset_id)}</td>"
        f"<td>{_esc(model.monitor_type(model.monitor(monitor_id).monitor_type_id).name)}</td></tr>"
        for monitor_id in sorted(report.deployment.monitor_ids)
    )

    attack_rows = []
    for a in sorted(report.attacks, key=lambda x: x.coverage):
        full_tag = (
            '<span class="tag ok">full</span>'
            if a.fully_covered
            else '<span class="tag bad">partial</span>'
        )
        attack_rows.append(
            f"<tr><td>{_esc(a.attack_id)}</td>"
            f"<td class='num'>{a.importance:.2f}</td>"
            f"<td>{_bar(a.coverage, warn_below=0.5)}</td>"
            f"<td>{_bar(a.redundancy)}</td>"
            f"<td>{_bar(a.richness)}</td>"
            f"<td>{full_tag}</td></tr>"
        )

    campaign_section = ""
    if report.campaign is not None:
        c = report.campaign
        campaign_section = f"""
<h2>Simulated campaign</h2>
<table>
<tr><th>Runs</th><td class="num">{len(c.runs)}</td></tr>
<tr><th>Detection rate</th><td>{_bar(c.detection_rate, warn_below=0.5)}</td></tr>
<tr><th>Mean detection latency</th><td class="num">{c.mean_detection_latency:.1f} s</td></tr>
<tr><th>Forensic step completeness</th><td>{_bar(c.mean_step_completeness)}</td></tr>
<tr><th>Forensic field completeness</th><td>{_bar(c.mean_field_completeness)}</td></tr>
</table>
"""

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_esc(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<p class="muted">{len(report.deployment)} monitors deployed ·
{report.fully_covered_count}/{len(report.attacks)} attacks fully covered ·
{report.detectable_count}/{len(report.attacks)} detectable</p>

<h2>Metrics</h2>
<table>{summary_rows}</table>

<h2>Cost</h2>
<table><tr><th>Dimension</th><th>Spend</th></tr>{cost_rows}</table>

<h2>Deployed monitors</h2>
<table><tr><th>Monitor</th><th>Asset</th><th>Type</th></tr>{monitor_rows}</table>

<h2>Per-attack assessment <span class="muted">(weakest coverage first)</span></h2>
<table>
<tr><th>Attack</th><th>Imp.</th><th>Coverage</th><th>Redundancy</th>
<th>Richness</th><th>Status</th></tr>
{"".join(attack_rows)}
</table>
{campaign_section}
</body>
</html>
"""
