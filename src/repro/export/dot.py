"""Graphviz DOT export of models and deployments.

Renders the asset topology (and optionally a deployment over it) as DOT
text for ``dot -Tsvg``-style tooling — no graphviz dependency, just the
text format.  Deployed monitors appear as a label block under their
asset; network-scoped monitors additionally color the links they tap.
"""

from __future__ import annotations

from repro.core.assets import AssetKind
from repro.core.model import SystemModel
from repro.core.monitors import MonitorScope
from repro.optimize.deployment import Deployment

__all__ = ["topology_to_dot", "deployment_to_dot"]

_KIND_SHAPES: dict[AssetKind, str] = {
    AssetKind.FIREWALL: "diamond",
    AssetKind.LOAD_BALANCER: "trapezium",
    AssetKind.NETWORK_DEVICE: "hexagon",
    AssetKind.DATABASE: "cylinder",
    AssetKind.EXTERNAL: "cloud",
    AssetKind.SERVER: "box",
    AssetKind.WORKSTATION: "box",
    AssetKind.HOST: "box",
    AssetKind.SERVICE: "ellipse",
    AssetKind.STORAGE: "folder",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def topology_to_dot(model: SystemModel, *, name: str = "topology") -> str:
    """The asset graph as a DOT ``graph`` document."""
    lines = [f'graph "{_escape(name)}" {{', "  node [fontsize=10];"]
    for asset in model.assets.values():
        shape = _KIND_SHAPES.get(asset.kind, "box")
        label = f"{_escape(asset.name)}\\n({asset.kind.value})"
        lines.append(f'  "{_escape(asset.asset_id)}" [label="{label}", shape={shape}];')
    for link in model.topology.links:
        style = ' [style=dashed]' if link.medium == "wan" else ""
        lines.append(f'  "{_escape(link.a)}" -- "{_escape(link.b)}"{style};')
    lines.append("}")
    return "\n".join(lines)


def deployment_to_dot(deployment: Deployment, *, name: str = "deployment") -> str:
    """Topology plus the deployment: monitors listed under their assets.

    Assets carrying at least one selected monitor are filled; the set of
    monitor type names is appended to the asset label.
    """
    model = deployment.model
    by_asset: dict[str, list[str]] = {}
    tapped_links: set[frozenset[str]] = set()
    for monitor_id in sorted(deployment.monitor_ids):
        monitor = model.monitor(monitor_id)
        mtype = model.monitor_type(monitor.monitor_type_id)
        by_asset.setdefault(monitor.asset_id, []).append(mtype.monitor_type_id)
        if mtype.scope is MonitorScope.NETWORK:
            for neighbor in model.topology.neighbors(monitor.asset_id):
                tapped_links.add(frozenset((monitor.asset_id, neighbor)))

    lines = [f'graph "{_escape(name)}" {{', "  node [fontsize=10];"]
    for asset in model.assets.values():
        shape = _KIND_SHAPES.get(asset.kind, "box")
        monitors = by_asset.get(asset.asset_id)
        if monitors:
            label = f"{asset.name}\\n[{', '.join(monitors)}]"
            style = ', style=filled, fillcolor="lightblue"'
        else:
            label = asset.name
            style = ""
        lines.append(
            f'  "{_escape(asset.asset_id)}" [label="{_escape(label)}", shape={shape}{style}];'
        )
    for link in model.topology.links:
        attributes = []
        if link.medium == "wan":
            attributes.append("style=dashed")
        if link.endpoints in tapped_links:
            attributes.append("color=blue")
            attributes.append("penwidth=2")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f'  "{_escape(link.a)}" -- "{_escape(link.b)}"{suffix};')
    lines.append("}")
    return "\n".join(lines)
