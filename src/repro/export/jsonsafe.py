"""Strict JSON serialization: no NaN/Infinity ever reaches a file.

Python's ``json`` module happily emits ``NaN``, ``Infinity`` and
``-Infinity`` — tokens the JSON grammar does not contain.  Files carrying
them load fine in Python and then explode in every other consumer
(``jq``, browsers, spreadsheet importers).  Campaign metrics make this a
real hazard: ``mean_detection_latency`` is NaN when nothing was
detected, and utilization is +inf over a zero budget.

This module is the single choke point the exporters go through:

* :func:`sanitize` recursively replaces non-finite floats with ``None``
  (the JSON ``null`` sentinel — explicit "no value", which is exactly
  what NaN means in these reports);
* :func:`dumps` sanitizes and then serializes with ``allow_nan=False``,
  so any non-finite float that evades the sweep (a new container type,
  a numpy scalar smuggled through ``default=``) is a hard error at
  write time rather than a corrupt artifact at read time.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = ["dumps", "sanitize"]


def sanitize(value: Any) -> Any:
    """``value`` with every non-finite float replaced by ``None``.

    Recurses through dicts, lists and tuples (tuples come back as
    lists, matching what ``json`` would do anyway).  Dict *keys* are
    left alone — ``json`` stringifies them, and ``"nan"`` as a key is
    legal JSON.  Bools pass through untouched even though ``bool`` is
    an ``int`` subclass.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


def dumps(payload: Any, **kwargs: Any) -> str:
    """Strict ``json.dumps``: sanitized input, ``allow_nan=False``.

    Accepts the usual ``json.dumps`` keyword arguments (``indent``,
    ``sort_keys``, ...); ``allow_nan`` is pinned to ``False`` and cannot
    be overridden.
    """
    kwargs.pop("allow_nan", None)
    return json.dumps(sanitize(payload), allow_nan=False, **kwargs)
