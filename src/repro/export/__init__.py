"""Exports: Graphviz DOT, CSV dumps, HTML reports, strict JSON."""

from repro.export.csv_export import report_to_csv, sweep_to_csv, write_csv
from repro.export.dot import deployment_to_dot, topology_to_dot
from repro.export.html import report_to_html
from repro.export.jsonsafe import dumps as strict_json_dumps
from repro.export.jsonsafe import sanitize as sanitize_json

__all__ = [
    "report_to_html",
    "report_to_csv",
    "sweep_to_csv",
    "write_csv",
    "deployment_to_dot",
    "topology_to_dot",
    "sanitize_json",
    "strict_json_dumps",
]
