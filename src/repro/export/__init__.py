"""Exports: Graphviz DOT rendering, CSV dumps, and HTML reports."""

from repro.export.csv_export import report_to_csv, sweep_to_csv, write_csv
from repro.export.dot import deployment_to_dot, topology_to_dot
from repro.export.html import report_to_html

__all__ = [
    "report_to_html",
    "report_to_csv",
    "sweep_to_csv",
    "write_csv",
    "deployment_to_dot",
    "topology_to_dot",
]
