"""Redundancy metrics: independent corroboration of each attack step.

A single monitor can be evaded, misconfigured, or compromised; the
methodology therefore rewards deployments in which each attack step is
evidenced by *multiple independent* monitors.  Redundancy of an event is
the number of deployed evidencing monitors, capped at a diminishing-
returns threshold ``cap`` and normalized to ``[0, 1]``; attack and
overall redundancy aggregate exactly like coverage does.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.attacks import Attack
from repro.core.model import SystemModel
from repro.errors import MetricError

__all__ = [
    "DEFAULT_REDUNDANCY_CAP",
    "event_evidence_count",
    "event_redundancy",
    "attack_redundancy",
    "overall_redundancy",
]

#: Evidence sources per step beyond which extra monitors add no
#: redundancy value.  Two independent sources already allow cross-
#: validation; the case study keeps the paper-style default of 2.
DEFAULT_REDUNDANCY_CAP = 2


def _check_cap(cap: int) -> None:
    if cap < 1:
        raise MetricError(f"redundancy cap must be >= 1, got {cap!r}")


def event_evidence_count(model: SystemModel, deployed: Iterable[str], event_id: str) -> int:
    """Number of deployed monitors providing evidence for ``event_id``."""
    providers = model.monitors_for_event(event_id)
    deployed_set = set(deployed)
    return sum(1 for m in providers if m in deployed_set)


def event_redundancy(
    model: SystemModel,
    deployed: Iterable[str],
    event_id: str,
    cap: int = DEFAULT_REDUNDANCY_CAP,
) -> float:
    """``min(evidence count, cap) / cap`` for one event, in ``[0, 1]``."""
    _check_cap(cap)
    count = event_evidence_count(model, deployed, event_id)
    return min(count, cap) / cap


def attack_redundancy(
    model: SystemModel,
    deployed: Iterable[str],
    attack: Attack | str,
    cap: int = DEFAULT_REDUNDANCY_CAP,
) -> float:
    """Step-weighted average event redundancy for one attack."""
    _check_cap(cap)
    if isinstance(attack, str):
        attack = model.attack(attack)
    deployed_set = set(deployed)
    weighted = sum(
        step.weight * event_redundancy(model, deployed_set, step.event_id, cap)
        for step in attack.steps
    )
    return weighted / attack.total_step_weight


def overall_redundancy(
    model: SystemModel, deployed: Iterable[str], cap: int = DEFAULT_REDUNDANCY_CAP
) -> float:
    """Importance-weighted average attack redundancy, in ``[0, 1]``."""
    _check_cap(cap)
    attacks = model.attacks
    if not attacks:
        return 0.0
    deployed_set = set(deployed)
    total_importance = sum(a.importance for a in attacks.values())
    weighted = sum(
        a.importance * attack_redundancy(model, deployed_set, a, cap) for a in attacks.values()
    )
    return weighted / total_importance
