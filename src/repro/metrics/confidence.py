"""Confidence metrics: probability that evidence is actually recorded.

The static coverage metrics treat monitors as ideal observers.  In
operation monitors miss events — log rotation races, packet drops under
load, sampling.  Each :class:`~repro.core.monitors.MonitorType` carries
a ``quality`` (probability of recording an observable event); treating
monitors as independent, the confidence that a covered event actually
leaves usable evidence is::

    conf(e) = 1 - prod_over_deployed_evidencing_m (1 - weight(m, e) * quality(m))

Confidence is a *reporting* metric: it is nonlinear in the selection
variables, so the ILP objective uses coverage/redundancy/richness and
confidence is evaluated on the resulting deployments (and validated
operationally by the simulation substrate).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.attacks import Attack
from repro.core.model import SystemModel

__all__ = ["event_confidence", "attack_confidence", "overall_confidence"]


def event_confidence(model: SystemModel, deployed: Iterable[str], event_id: str) -> float:
    """Probability at least one deployed monitor records ``event_id``."""
    providers = model.monitors_for_event(event_id)
    deployed_set = set(deployed)
    miss_probability = 1.0
    for monitor_id, weight in providers.items():
        if monitor_id not in deployed_set:
            continue
        monitor = model.monitor(monitor_id)
        quality = model.monitor_type(monitor.monitor_type_id).quality
        miss_probability *= 1.0 - weight * quality
    return 1.0 - miss_probability


def attack_confidence(model: SystemModel, deployed: Iterable[str], attack: Attack | str) -> float:
    """Step-weighted average event confidence for one attack."""
    if isinstance(attack, str):
        attack = model.attack(attack)
    deployed_set = set(deployed)
    weighted = sum(
        step.weight * event_confidence(model, deployed_set, step.event_id)
        for step in attack.steps
    )
    return weighted / attack.total_step_weight


def overall_confidence(model: SystemModel, deployed: Iterable[str]) -> float:
    """Importance-weighted average attack confidence, in ``[0, 1]``."""
    attacks = model.attacks
    if not attacks:
        return 0.0
    deployed_set = set(deployed)
    total_importance = sum(a.importance for a in attacks.values())
    weighted = sum(
        a.importance * attack_confidence(model, deployed_set, a) for a in attacks.values()
    )
    return weighted / total_importance
