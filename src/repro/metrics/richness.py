"""Richness metrics: forensic depth of the collected data.

Where coverage asks *whether* an attack step leaves a trace, richness
asks *how informative* that trace is.  Richness of an event under a
deployment is the fraction of capturable data fields (source addresses,
URLs, query text, syscall arguments, …) the deployment actually
captures, relative to what deploying every monitor in the model would
capture.  Richer data supports deeper forensic analysis — attribution,
scoping, timeline reconstruction — which is the second use the paper's
monitors serve besides detection.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.attacks import Attack
from repro.core.model import SystemModel

__all__ = [
    "event_richness",
    "attack_richness",
    "overall_richness",
    "deployment_field_census",
]


def event_richness(model: SystemModel, deployed: Iterable[str], event_id: str) -> float:
    """Fraction of capturable fields for ``event_id`` actually captured.

    Events no monitor in the model can evidence have no capturable
    fields and get richness 0.
    """
    capturable = model.max_fields_for_event(event_id)
    if not capturable:
        return 0.0
    captured = model.fields_for_event(event_id, deployed)
    return len(captured) / len(capturable)


def attack_richness(model: SystemModel, deployed: Iterable[str], attack: Attack | str) -> float:
    """Step-weighted average event richness for one attack, in ``[0, 1]``."""
    if isinstance(attack, str):
        attack = model.attack(attack)
    deployed_set = set(deployed)
    weighted = sum(
        step.weight * event_richness(model, deployed_set, step.event_id) for step in attack.steps
    )
    return weighted / attack.total_step_weight


def overall_richness(model: SystemModel, deployed: Iterable[str]) -> float:
    """Importance-weighted average attack richness, in ``[0, 1]``."""
    attacks = model.attacks
    if not attacks:
        return 0.0
    deployed_set = set(deployed)
    total_importance = sum(a.importance for a in attacks.values())
    weighted = sum(
        a.importance * attack_richness(model, deployed_set, a) for a in attacks.values()
    )
    return weighted / total_importance


def deployment_field_census(
    model: SystemModel, deployed: Iterable[str]
) -> dict[str, frozenset[str]]:
    """Per-event captured field sets, for forensic reports.

    Only events with at least one captured field appear in the result.
    """
    deployed_list = list(deployed)
    census: dict[str, frozenset[str]] = {}
    for event_id in model.events:
        fields = model.fields_for_event(event_id, deployed_list)
        if fields:
            census[event_id] = fields
    return census
