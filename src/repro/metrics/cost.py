"""Deployment cost metrics and budgets.

Costs in this methodology are *multi-dimensional* (CPU, memory, storage,
network, administrative effort), and a deployment is feasible only if it
fits the budget in **every** dimension.  This module provides the
:class:`Budget` wrapper used across the optimizer, plus reporting
helpers (utilization, residual capacity).

Unlike :class:`~repro.core.monitors.CostVector` (where a zero entry is
the same as no entry), a budget distinguishes *unconstrained* dimensions
(absent) from *zero* limits (present, forbidding any spend) — the budget
sweeps rely on fraction 0 actually forbidding everything.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.model import SystemModel
from repro.core.monitors import CostVector
from repro.errors import MetricError

__all__ = ["Budget", "deployment_cost", "budget_utilization", "residual_budget"]


@dataclass(frozen=True, slots=True)
class Budget:
    """A multi-dimensional spending limit for monitor deployment.

    Parameters
    ----------
    limits:
        Per-dimension limits.  Dimensions absent from ``limits`` are
        **unconstrained**; an explicit zero forbids any spend in that
        dimension.
    """

    limits: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen: dict[str, float] = {}
        for dim, value in dict(self.limits).items():
            value = float(value)
            if not math.isfinite(value) or value < 0:
                raise MetricError(
                    f"budget limit for {dim!r} must be finite and >= 0, got {value!r}"
                )
            frozen[dim] = value
        object.__setattr__(self, "limits", frozen)

    @classmethod
    def of(cls, **limits: float) -> "Budget":
        """Convenience constructor: ``Budget.of(cpu=10, storage=40)``."""
        return cls(limits)

    @classmethod
    def fraction_of_total(cls, model: SystemModel, fraction: float) -> "Budget":
        """A budget equal to ``fraction`` of the model's all-monitors cost.

        This is the knob the budget-sweep experiments turn: fraction 0
        constrains every cost dimension to zero (forbidding every monitor
        with any cost), fraction 1 affords the full deployment.
        """
        if not 0.0 <= fraction:
            raise MetricError(f"budget fraction must be >= 0, got {fraction!r}")
        total = model.total_cost()
        if not total.dimensions:
            raise MetricError(
                "model has no cost dimensions; fraction_of_total cannot build a budget"
            )
        return cls({dim: total.get(dim) * fraction for dim in sorted(total.dimensions)})

    @property
    def dimensions(self) -> frozenset[str]:
        """Dimensions this budget explicitly limits."""
        return frozenset(self.limits)

    def limit(self, dimension: str) -> float | None:
        """The limit for ``dimension``; ``None`` when unconstrained."""
        return self.limits.get(dimension)

    def allows(self, cost: CostVector) -> bool:
        """Whether ``cost`` fits in every constrained dimension.

        Dimensions the budget does not mention are unconstrained.
        """
        return all(cost.get(dim) <= limit for dim, limit in self.limits.items())

    def scaled(self, factor: float) -> "Budget":
        """A budget with every limit multiplied by ``factor``."""
        if factor < 0:
            raise MetricError(f"budget scale factor must be >= 0, got {factor!r}")
        return Budget({dim: limit * factor for dim, limit in self.limits.items()})


def deployment_cost(model: SystemModel, monitor_ids: Iterable[str]) -> CostVector:
    """Total cost of deploying ``monitor_ids`` in ``model``."""
    return model.deployment_cost(monitor_ids)


def budget_utilization(
    model: SystemModel, monitor_ids: Iterable[str], budget: Budget
) -> dict[str, float]:
    """Per-dimension spend as a fraction of the budget limit.

    Only constrained dimensions appear in the result.  A zero limit with
    zero spend reports utilization 0; zero limit with positive spend is
    reported as ``inf`` (the deployment is infeasible).  A budget may
    constrain dimensions no deployed monitor spends in at all — those
    report 0.0, never an error.
    """
    spend = deployment_cost(model, monitor_ids)
    utilization: dict[str, float] = {}
    for dim, limit in budget.limits.items():
        used = _spend_in(spend, dim)
        if limit > 0:
            utilization[dim] = used / limit
        else:
            utilization[dim] = 0.0 if used == 0 else float("inf")
    return utilization


def residual_budget(
    model: SystemModel, monitor_ids: Iterable[str], budget: Budget
) -> Mapping[str, float]:
    """Remaining capacity per constrained dimension (may be negative).

    Dimensions the deployment never spends in report their full limit
    as residual.
    """
    spend = deployment_cost(model, monitor_ids)
    return {dim: limit - _spend_in(spend, dim) for dim, limit in budget.limits.items()}


def _spend_in(spend: CostVector, dimension: str) -> float:
    """Spend along ``dimension``, defaulting missing dimensions to 0.0.

    :meth:`CostVector.get` already defaults absent dimensions to zero;
    this guard additionally absorbs a ``None`` (a cost-vector
    implementation that mirrors ``dict.get``) so the reporting helpers
    can never TypeError over a budget that constrains a dimension no
    monitor spends in.
    """
    used = spend.get(dimension)
    return 0.0 if used is None else float(used)
