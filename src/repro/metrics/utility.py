"""The combined utility function over monitor deployments.

Utility is the quantity the paper's optimization maximizes: a convex
combination of the coverage, redundancy, and richness components, each
already normalized to ``[0, 1]``::

    U(D) = w_cov * coverage(D) + w_red * redundancy(D) + w_rich * richness(D)

All three components are linear in per-event auxiliary quantities, which
is exactly what lets :mod:`repro.optimize.formulation` express the same
function inside a 0/1 integer program.  :func:`utility` here is the
reference (direct) evaluation; the ILP objective and this function must
agree on every deployment — a property the test suite checks.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.model import SystemModel
from repro.errors import MetricError
from repro.metrics.coverage import attack_coverage, overall_coverage
from repro.metrics.redundancy import (
    DEFAULT_REDUNDANCY_CAP,
    attack_redundancy,
    overall_redundancy,
)
from repro.metrics.richness import attack_richness, overall_richness

__all__ = ["UtilityWeights", "utility", "utility_breakdown", "attack_utility"]


@dataclass(frozen=True, slots=True)
class UtilityWeights:
    """Weights of the utility components, summing to 1.

    Parameters
    ----------
    coverage:
        Weight of breadth: seeing each attack step at all.
    redundancy:
        Weight of depth: corroborating each step with multiple monitors.
    richness:
        Weight of forensic detail: capturing many distinct data fields.
    redundancy_cap:
        Evidence sources per step at which redundancy saturates.
    """

    coverage: float = 0.6
    redundancy: float = 0.25
    richness: float = 0.15
    redundancy_cap: int = DEFAULT_REDUNDANCY_CAP

    def __post_init__(self) -> None:
        for name, value in (
            ("coverage", self.coverage),
            ("redundancy", self.redundancy),
            ("richness", self.richness),
        ):
            if value < 0:
                raise MetricError(f"utility weight {name!r} must be >= 0, got {value!r}")
        total = self.coverage + self.redundancy + self.richness
        if abs(total - 1.0) > 1e-9:
            raise MetricError(f"utility weights must sum to 1, got {total!r}")
        if self.redundancy_cap < 1:
            raise MetricError(f"redundancy_cap must be >= 1, got {self.redundancy_cap!r}")

    @classmethod
    def coverage_only(cls) -> "UtilityWeights":
        """Pure-coverage utility (the redundancy/richness ablation)."""
        return cls(coverage=1.0, redundancy=0.0, richness=0.0)

    @classmethod
    def tradeoff(cls, lam: float, redundancy_cap: int = DEFAULT_REDUNDANCY_CAP) -> "UtilityWeights":
        """Two-way sweep between coverage (``lam=0``) and redundancy (``lam=1``).

        Used by experiment F2 to show deployments shifting from breadth
        to depth as redundancy gains weight.
        """
        if not 0.0 <= lam <= 1.0:
            raise MetricError(f"tradeoff parameter must lie in [0, 1], got {lam!r}")
        return cls(coverage=1.0 - lam, redundancy=lam, richness=0.0, redundancy_cap=redundancy_cap)


def utility(
    model: SystemModel, deployed: Iterable[str], weights: UtilityWeights | None = None
) -> float:
    """The combined utility of a deployment, in ``[0, 1]``."""
    weights = weights or UtilityWeights()
    deployed_set = set(deployed)
    value = 0.0
    if weights.coverage:
        value += weights.coverage * overall_coverage(model, deployed_set)
    if weights.redundancy:
        value += weights.redundancy * overall_redundancy(
            model, deployed_set, weights.redundancy_cap
        )
    if weights.richness:
        value += weights.richness * overall_richness(model, deployed_set)
    return value


def utility_breakdown(
    model: SystemModel, deployed: Iterable[str], weights: UtilityWeights | None = None
) -> dict[str, float]:
    """The unweighted component values plus the combined utility."""
    weights = weights or UtilityWeights()
    deployed_set = set(deployed)
    coverage = overall_coverage(model, deployed_set)
    redundancy = overall_redundancy(model, deployed_set, weights.redundancy_cap)
    richness = overall_richness(model, deployed_set)
    return {
        "coverage": coverage,
        "redundancy": redundancy,
        "richness": richness,
        "utility": (
            weights.coverage * coverage
            + weights.redundancy * redundancy
            + weights.richness * richness
        ),
    }


def attack_utility(
    model: SystemModel,
    deployed: Iterable[str],
    attack_id: str,
    weights: UtilityWeights | None = None,
) -> float:
    """Per-attack utility (before importance weighting), in ``[0, 1]``."""
    weights = weights or UtilityWeights()
    deployed_set = set(deployed)
    attack = model.attack(attack_id)
    value = 0.0
    if weights.coverage:
        value += weights.coverage * attack_coverage(model, deployed_set, attack)
    if weights.redundancy:
        value += weights.redundancy * attack_redundancy(
            model, deployed_set, attack, weights.redundancy_cap
        )
    if weights.richness:
        value += weights.richness * attack_richness(model, deployed_set, attack)
    return value
