"""Coverage metrics: how much of each attack a deployment can see.

Coverage is the primary utility component in the paper's methodology.
An event is *covered* by a deployment at the strength of the best
evidence any selected monitor provides for it; an attack's coverage is
the step-weighted average of its events' coverage; overall coverage is
the importance-weighted average across attacks.  All values lie in
``[0, 1]``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.attacks import Attack
from repro.core.model import SystemModel

__all__ = [
    "event_coverage",
    "attack_coverage",
    "overall_coverage",
    "asset_weighted_coverage",
    "zone_coverage",
    "covered_events",
    "fully_covered_attacks",
    "detectable_attacks",
]


def event_coverage(model: SystemModel, deployed: Iterable[str], event_id: str) -> float:
    """Best evidence weight for ``event_id`` among deployed monitors.

    Returns 0 when no deployed monitor evidences the event.
    """
    providers = model.monitors_for_event(event_id)
    deployed_set = set(deployed)
    return max((w for m, w in providers.items() if m in deployed_set), default=0.0)


def attack_coverage(model: SystemModel, deployed: Iterable[str], attack: Attack | str) -> float:
    """Step-weighted average event coverage for one attack, in ``[0, 1]``."""
    if isinstance(attack, str):
        attack = model.attack(attack)
    deployed_set = set(deployed)
    covered = sum(
        step.weight * event_coverage(model, deployed_set, step.event_id) for step in attack.steps
    )
    return covered / attack.total_step_weight


def overall_coverage(model: SystemModel, deployed: Iterable[str]) -> float:
    """Importance-weighted average attack coverage, in ``[0, 1]``.

    A model without attacks has vacuous coverage 0: there is nothing to
    cover, and reporting 1 would make empty models look ideal.
    """
    attacks = model.attacks
    if not attacks:
        return 0.0
    deployed_set = set(deployed)
    total_importance = sum(a.importance for a in attacks.values())
    weighted = sum(
        a.importance * attack_coverage(model, deployed_set, a) for a in attacks.values()
    )
    return weighted / total_importance


def asset_weighted_coverage(model: SystemModel, deployed: Iterable[str]) -> float:
    """Event coverage weighted by the criticality of the event's asset.

    Complements the attack-centric :func:`overall_coverage` with an
    asset-centric view: how well are intrusion activities at the
    *important machines* observed, regardless of which attack they
    belong to?  Only events used by at least one attack participate.
    Returns 0 when the model has no such events (or all their assets
    have zero criticality).
    """
    deployed_set = set(deployed)
    weighted = 0.0
    total_weight = 0.0
    for event_id, event in model.events.items():
        if not model.attacks_using_event(event_id):
            continue
        criticality = model.topology.asset(event.asset_id).criticality
        total_weight += criticality
        weighted += criticality * event_coverage(model, deployed_set, event_id)
    if total_weight == 0:
        return 0.0
    return weighted / total_weight


def zone_coverage(model: SystemModel, deployed: Iterable[str]) -> dict[str, float]:
    """Mean event coverage per network zone.

    Groups attack-relevant events by the ``zone`` of the asset they
    occur at and averages their coverage — the view a security review
    presents ("the DMZ is well instrumented, the field network is not").
    Assets with an empty zone group under ``""``.
    """
    deployed_set = set(deployed)
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for event_id, event in model.events.items():
        if not model.attacks_using_event(event_id):
            continue
        zone = model.topology.asset(event.asset_id).zone
        sums[zone] = sums.get(zone, 0.0) + event_coverage(model, deployed_set, event_id)
        counts[zone] = counts.get(zone, 0) + 1
    return {zone: sums[zone] / counts[zone] for zone in sums}


def covered_events(
    model: SystemModel, deployed: Iterable[str], threshold: float = 0.0
) -> frozenset[str]:
    """Events whose coverage strictly exceeds ``threshold``."""
    deployed_set = set(deployed)
    return frozenset(
        e for e in model.events if event_coverage(model, deployed_set, e) > threshold
    )


def fully_covered_attacks(
    model: SystemModel, deployed: Iterable[str], threshold: float = 0.0
) -> frozenset[str]:
    """Attacks with **every required step's** event covered above ``threshold``.

    Full coverage is what intrusion *detection* needs: evidence along
    the entire required kill chain.
    """
    deployed_set = set(deployed)
    result = []
    for attack in model.attacks.values():
        if all(
            event_coverage(model, deployed_set, e) > threshold for e in attack.required_event_ids
        ):
            result.append(attack.attack_id)
    return frozenset(result)


def detectable_attacks(
    model: SystemModel, deployed: Iterable[str], threshold: float = 0.0
) -> frozenset[str]:
    """Attacks with **at least one step's** event covered above ``threshold``.

    Detectability is the weaker, forensics-oriented notion: some trace
    of the attack exists in the collected data.
    """
    deployed_set = set(deployed)
    result = []
    for attack in model.attacks.values():
        if any(
            event_coverage(model, deployed_set, step.event_id) > threshold
            for step in attack.steps
        ):
            result.append(attack.attack_id)
    return frozenset(result)
