"""Quantitative metrics over monitor deployments.

This package implements the paper's metric suite:

* **cost** (:mod:`repro.metrics.cost`) — multi-dimensional deployment
  cost and budgets;
* **coverage** (:mod:`repro.metrics.coverage`) — breadth: which attack
  steps leave any trace;
* **redundancy** (:mod:`repro.metrics.redundancy`) — depth: independent
  corroboration per step;
* **richness** (:mod:`repro.metrics.richness`) — forensic detail: data
  fields captured per step;
* **confidence** (:mod:`repro.metrics.confidence`) — operational:
  probability evidence is actually recorded given monitor quality;
* **utility** (:mod:`repro.metrics.utility`) — the convex combination
  the optimizer maximizes.

Every metric takes ``(model, deployed_monitor_ids, ...)`` and returns a
value in ``[0, 1]`` (costs excepted), so deployments are comparable
across models and experiments.
"""

from repro.metrics.confidence import attack_confidence, event_confidence, overall_confidence
from repro.metrics.cost import Budget, budget_utilization, deployment_cost, residual_budget
from repro.metrics.coverage import (
    asset_weighted_coverage,
    zone_coverage,
    attack_coverage,
    covered_events,
    detectable_attacks,
    event_coverage,
    fully_covered_attacks,
    overall_coverage,
)
from repro.metrics.redundancy import (
    DEFAULT_REDUNDANCY_CAP,
    attack_redundancy,
    event_evidence_count,
    event_redundancy,
    overall_redundancy,
)
from repro.metrics.richness import (
    attack_richness,
    deployment_field_census,
    event_richness,
    overall_richness,
)
from repro.metrics.utility import UtilityWeights, attack_utility, utility, utility_breakdown

__all__ = [
    "attack_confidence",
    "event_confidence",
    "overall_confidence",
    "Budget",
    "budget_utilization",
    "deployment_cost",
    "residual_budget",
    "asset_weighted_coverage",
    "zone_coverage",
    "attack_coverage",
    "covered_events",
    "detectable_attacks",
    "event_coverage",
    "fully_covered_attacks",
    "overall_coverage",
    "DEFAULT_REDUNDANCY_CAP",
    "attack_redundancy",
    "event_evidence_count",
    "event_redundancy",
    "overall_redundancy",
    "attack_richness",
    "deployment_field_census",
    "event_richness",
    "overall_richness",
    "UtilityWeights",
    "attack_utility",
    "utility",
    "utility_breakdown",
]
