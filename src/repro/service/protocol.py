"""Line-delimited JSON protocol behind ``repro serve``.

One request per line in, one JSON object per line out.  The protocol is
deliberately minimal — it exists so the service is *reachable* (from a
shell pipe, a Unix socket, a load generator) without pulling a web
framework into a zero-dependency repository:

* ``{"op": "publish", "id": "p1", "model": {...}}`` — register a model
  document (the :mod:`repro.core.serialization` format); replies with
  its ``model_ref`` digest.  Publish once, then submit jobs by
  reference — the digest-keyed caches make every subsequent job warm.
* ``{"op": "submit", "id": "s1", "request": {...}}`` — admit a job.
  The reply is immediate: either an ``accepted`` ack (the terminal
  ``result`` line follows whenever the job finishes — lines are
  correlated by ``id``, not by order) or a typed rejection carrying
  ``retry_after``.
* ``{"op": "cancel", "id": "c1", "target": "s1"}`` — cancel the job
  submitted under id ``s1`` if it has not started.
* ``{"op": "stats", "id": "t1"}`` — service snapshot (queue depth,
  cache occupancy, worker count).

Malformed lines never kill the connection: they produce an
``{"ok": false, "error": {...}}`` reply, mirroring the service's
reject-don't-drop admission contract.  On EOF the server drains
outstanding jobs, writes their result lines, and returns.

Results serialize through :func:`value_to_payload`, which flattens
:class:`~repro.optimize.deployment.OptimizationResult`, sweep points,
and frontier points into sorted-monitor-id JSON documents — two
bit-identical results serialize to byte-identical lines, which is what
the differential protocol tests compare.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

from repro import obs
from repro.core.serialization import model_from_dict
from repro.errors import ReproError
from repro.export.jsonsafe import dumps as strict_dumps
from repro.metrics.utility import UtilityWeights
from repro.optimize.deployment import OptimizationResult
from repro.optimize.frontier import FrontierPoint
from repro.optimize.pareto import SweepPoint
from repro.service.requests import RequestValidationError, SolveRequest
from repro.service.service import JobResult, ServiceRejection, SolveService

__all__ = [
    "LineServer",
    "ProtocolError",
    "request_from_payload",
    "result_to_payload",
    "serve_stdio",
    "serve_unix_socket",
    "value_to_payload",
]


class ProtocolError(ReproError):
    """A line could not be decoded or named an unknown operation."""


#: SolveRequest fields settable straight from a submit payload.
_REQUEST_FIELDS = (
    "tenant",
    "kind",
    "model_ref",
    "budget_limits",
    "budget_fraction",
    "fractions",
    "min_utility",
    "fully_cover",
    "forced_monitors",
    "max_monitors",
    "backend",
    "time_limit",
    "deadline",
    "max_nodes",
    "gap",
    "epsilon",
    "max_points",
    "job_id",
)


def request_from_payload(payload: dict[str, Any]) -> SolveRequest:
    """Build a validated :class:`SolveRequest` from a submit payload.

    ``model`` may be inline (a serialized model document) or named by
    ``model_ref``; ``weights`` is a mapping of
    :class:`~repro.metrics.utility.UtilityWeights` fields.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"request payload must be an object, got {type(payload).__name__}")
    unknown = set(payload) - set(_REQUEST_FIELDS) - {"model", "weights"}
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    kwargs: dict[str, Any] = {
        name: payload[name] for name in _REQUEST_FIELDS if name in payload
    }
    if payload.get("model") is not None:
        kwargs["model"] = model_from_dict(payload["model"])
    if payload.get("weights") is not None:
        kwargs["weights"] = UtilityWeights(**payload["weights"])
    try:
        return SolveRequest(**kwargs).validate()
    except TypeError as exc:
        raise ProtocolError(f"malformed request payload: {exc}") from exc
    except ValueError as exc:
        raise ProtocolError(f"malformed request payload: {exc}") from exc


def value_to_payload(value: Any) -> Any:
    """Flatten a job's solver payload into plain JSON data."""
    if value is None:
        return None
    if isinstance(value, OptimizationResult):
        return {
            "monitors": sorted(value.deployment.monitor_ids),
            "objective": value.objective,
            "utility": value.utility,
            "method": value.method,
            "optimal": value.optimal,
            "stats": dict(value.stats),
        }
    if isinstance(value, SweepPoint):
        return {
            "fraction": value.fraction,
            "budget": dict(value.budget.limits),
            "result": value_to_payload(value.result),
        }
    if isinstance(value, FrontierPoint):
        return {
            "scalar_cost": value.scalar_cost,
            "utility": value.utility,
            "monitors": sorted(value.deployment.monitor_ids),
        }
    if isinstance(value, list):
        return [value_to_payload(item) for item in value]
    raise ProtocolError(f"unserializable job payload type {type(value).__name__}")


def result_to_payload(result: JobResult) -> dict[str, Any]:
    """Flatten a terminal :class:`JobResult` into plain JSON data."""
    return {
        "status": result.status.value,
        "tenant": result.tenant,
        "kind": result.kind.value,
        "digest": result.digest,
        "job_id": result.job_id,
        "cached": result.cached,
        "deduped": result.deduped,
        "attempts": result.attempts,
        "queue_seconds": result.queue_seconds,
        "run_seconds": result.run_seconds,
        "failure": None if result.failure is None else result.failure.to_dict(),
        "value": value_to_payload(result.value),
    }


def _error_payload(exc: Exception) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ServiceRejection):
        payload["retry_after"] = exc.retry_after
    if isinstance(exc, RequestValidationError):
        payload["problems"] = list(exc.problems)
    return payload


class LineServer:
    """Drive one :class:`SolveService` over a line stream.

    ``readline`` returns the next raw line (``None``/empty at EOF);
    ``writeline`` emits one reply object as a JSON line.  The server
    owns neither the streams nor the service lifecycle — callers
    compose it with stdio, sockets, or in-memory queues (the tests).
    """

    def __init__(self, service: SolveService):
        self.service = service
        self._write_lock = asyncio.Lock()
        self._jobs: dict[str, Any] = {}
        self._results: set[asyncio.Task[None]] = set()

    async def serve(
        self,
        readline: Callable[[], Awaitable[str | None]],
        writeline: Callable[[str], Awaitable[None]],
    ) -> None:
        """Process lines until EOF, then drain outstanding results."""
        self._writeline = writeline
        while True:
            line = await readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            await self._handle_line(line)
        if self._results:
            await asyncio.gather(*self._results, return_exceptions=True)

    async def _emit(self, payload: dict[str, Any]) -> None:
        async with self._write_lock:
            await self._writeline(strict_dumps(payload, sort_keys=True))

    async def _handle_line(self, line: str) -> None:
        obs.counter("service.protocol.lines").inc()
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            obs.counter("service.protocol.errors").inc()
            await self._emit(
                {"id": None, "ok": False, "error": _error_payload(ProtocolError(f"bad JSON: {exc}"))}
            )
            return
        msg_id = message.get("id") if isinstance(message, dict) else None
        try:
            await self._dispatch(message, msg_id)
        except ReproError as exc:
            obs.counter("service.protocol.errors").inc()
            await self._emit({"id": msg_id, "ok": False, "error": _error_payload(exc)})

    async def _dispatch(self, message: Any, msg_id: Any) -> None:
        if not isinstance(message, dict):
            raise ProtocolError("each line must be a JSON object")
        op = message.get("op")
        if op == "publish":
            document = message.get("model")
            if not isinstance(document, dict):
                raise ProtocolError("publish needs a 'model' document")
            ref = self.service.publish_model(model_from_dict(document))
            await self._emit({"id": msg_id, "ok": True, "model_ref": ref})
        elif op == "submit":
            request = request_from_payload(message.get("request"))
            handle = self.service.submit(request)
            if msg_id is not None:
                self._jobs[str(msg_id)] = handle
            await self._emit(
                {"id": msg_id, "ok": True, "status": handle.status.value}
            )
            task = asyncio.ensure_future(self._deliver(msg_id, handle))
            self._results.add(task)
            task.add_done_callback(self._results.discard)
        elif op == "cancel":
            target = str(message.get("target"))
            handle = self._jobs.get(target)
            if handle is None:
                raise ProtocolError(f"unknown submit id {target!r}")
            cancelled = handle.cancel()
            await self._emit({"id": msg_id, "ok": True, "cancelled": cancelled})
        elif op == "stats":
            await self._emit({"id": msg_id, "ok": True, "stats": self.service.stats()})
        else:
            raise ProtocolError(f"unknown op {op!r}")

    async def _deliver(self, msg_id: Any, handle: Any) -> None:
        result: JobResult = await handle.future
        await self._emit(
            {"id": msg_id, "ok": True, "result": result_to_payload(result)}
        )


async def serve_stdio(service: SolveService, stdin: Any, stdout: Any) -> None:
    """Serve the line protocol over text file objects (e.g. std streams).

    Reads block in a thread so the event loop — and therefore the
    service's workers — keep running between lines.
    """
    server = LineServer(service)

    async def readline() -> str | None:
        return await asyncio.to_thread(stdin.readline)

    async def writeline(line: str) -> None:
        await asyncio.to_thread(_write_flush, stdout, line)

    await server.serve(readline, writeline)


def _write_flush(stream: Any, line: str) -> None:
    stream.write(line + "\n")
    stream.flush()


async def serve_unix_socket(service: SolveService, path: str) -> "asyncio.AbstractServer":
    """Serve the line protocol on a Unix domain socket at ``path``.

    Each connection gets its own :class:`LineServer` over the shared
    service; returns the listening server (caller closes it).
    """

    async def _on_connect(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        server = LineServer(service)

        async def readline() -> str | None:
            data = await reader.readline()
            return data.decode() if data else None

        async def writeline(line: str) -> None:
            writer.write(line.encode() + b"\n")
            await writer.drain()

        try:
            await server.serve(readline, writeline)
        finally:
            writer.close()

    return await asyncio.start_unix_server(_on_connect, path=path)
