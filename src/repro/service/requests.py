"""Validated job descriptions and the digests requests deduplicate on.

A :class:`SolveRequest` is the service's unit of admission: one tenant
asking for one optimization job — a max-utility solve, a min-cost
solve, a budget sweep, or an exact frontier.  Requests are plain data
(no live solver state), validated up front with *every* problem listed
(mirroring :class:`~repro.errors.ValidationError`), and canonically
hashable:

* :func:`model_digest` fingerprints a :class:`~repro.core.model.
  SystemModel` through its canonical serialized form, cached per model
  instance (models are immutable);
* :func:`request_digest` fingerprints everything about a request that
  can influence its *result* — kind, model digest, budget, weights,
  fractions, backend and solver controls — and deliberately excludes
  what cannot (``job_id``, ``deadline``): two requests with equal
  digests are interchangeable down to the bit, which is what makes
  result-cache deduplication exact rather than heuristic.
"""

from __future__ import annotations

import enum
import hashlib
import weakref
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.model import SystemModel
from repro.core.serialization import model_to_dict
from repro.errors import ReproError
from repro.export.jsonsafe import dumps as strict_dumps
from repro.metrics.utility import UtilityWeights

__all__ = [
    "JobKind",
    "RequestValidationError",
    "SolveRequest",
    "model_digest",
    "request_digest",
]

#: Backends a request may name (mirrors the CLI surface; enumeration is
#: a test oracle, not a service backend).
VALID_BACKENDS = ("scipy", "branch-and-bound", "parallel-bb", "fallback")


class JobKind(enum.Enum):
    """What kind of optimization a request asks for."""

    MAX_UTILITY = "max-utility"
    MIN_COST = "min-cost"
    SWEEP = "sweep"
    FRONTIER = "frontier"


class RequestValidationError(ReproError):
    """A request failed admission validation; lists every problem found."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__(
            "invalid solve request:\n" + "\n".join(f"  - {p}" for p in self.problems)
        )


@dataclass(frozen=True)
class SolveRequest:
    """One tenant's optimization job, as pure data.

    Parameters
    ----------
    tenant:
        The submitting tenant; caches, queues, and concurrency limits
        are all partitioned on this.
    kind:
        A :class:`JobKind` (or its string value).
    model / model_ref:
        Exactly one of: the system model inline, or the digest of a
        model previously registered with
        :meth:`~repro.service.service.SolveService.publish_model`.
    budget_limits / budget_fraction:
        The budget knob for ``max-utility`` jobs: explicit per-dimension
        limits, or a fraction of the model's all-monitors cost
        (:meth:`~repro.metrics.cost.Budget.fraction_of_total`).
    fractions:
        Budget fractions for ``sweep`` jobs.
    min_utility / fully_cover:
        Requirements for ``min-cost`` jobs.
    deadline:
        Relative wall-clock budget in seconds, measured from admission
        on the service's injected clock.  Propagated into the solver
        :class:`~repro.runtime.resilience.RetryPolicy` and the per-solve
        ``time_limit``; an expired job fails with a typed
        ``deadline`` error instead of occupying a worker.
    job_id:
        Optional caller correlation id; also names the request's
        fault-injection site (``service.job.<tenant>.<job_id>``).
    """

    tenant: str
    kind: JobKind | str
    model: SystemModel | None = None
    model_ref: str | None = None
    budget_limits: Mapping[str, float] | None = None
    budget_fraction: float | None = None
    weights: UtilityWeights | None = None
    fractions: tuple[float, ...] = ()
    min_utility: float | None = None
    fully_cover: tuple[str, ...] = ()
    forced_monitors: tuple[str, ...] = ()
    max_monitors: int | None = None
    backend: str = "scipy"
    time_limit: float | None = None
    deadline: float | None = None
    max_nodes: int | None = None
    gap: float | None = None
    epsilon: float = 1e-4
    max_points: int = 200
    job_id: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            object.__setattr__(self, "kind", JobKind(self.kind))
        object.__setattr__(self, "fractions", tuple(self.fractions))
        object.__setattr__(self, "fully_cover", tuple(self.fully_cover))
        object.__setattr__(self, "forced_monitors", tuple(self.forced_monitors))
        if self.budget_limits is not None:
            object.__setattr__(self, "budget_limits", dict(self.budget_limits))

    # -- validation --------------------------------------------------------

    def problems(self) -> list[str]:
        """Every admission problem with this request (empty when valid)."""
        problems: list[str] = []
        if not self.tenant or not str(self.tenant).strip():
            problems.append("tenant must be a non-empty string")
        if (self.model is None) == (self.model_ref is None):
            problems.append("exactly one of model / model_ref is required")
        if self.backend not in VALID_BACKENDS:
            problems.append(
                f"unknown backend {self.backend!r}; choose from {VALID_BACKENDS}"
            )
        elif self.backend == "fallback" and self.kind is not JobKind.MAX_UTILITY:
            problems.append(
                "the fallback backend chain is only available for "
                "max-utility jobs"
            )
        if self.kind is JobKind.MAX_UTILITY:
            if (self.budget_limits is None) == (self.budget_fraction is None):
                problems.append(
                    "max-utility jobs need exactly one of "
                    "budget_limits / budget_fraction"
                )
        elif self.kind is JobKind.MIN_COST:
            if self.min_utility is None and not self.fully_cover:
                problems.append(
                    "min-cost jobs need at least one requirement "
                    "(min_utility or fully_cover)"
                )
            if self.min_utility is not None and not 0.0 <= self.min_utility <= 1.0:
                problems.append(
                    f"min_utility must lie in [0, 1], got {self.min_utility!r}"
                )
        elif self.kind is JobKind.SWEEP:
            if not self.fractions:
                problems.append("sweep jobs need at least one budget fraction")
            if any(f < 0 for f in self.fractions):
                problems.append(f"sweep fractions must be >= 0, got {self.fractions!r}")
        elif self.kind is JobKind.FRONTIER:
            if self.epsilon <= 0:
                problems.append(f"epsilon must be > 0, got {self.epsilon!r}")
            if self.max_points < 1:
                problems.append(f"max_points must be >= 1, got {self.max_points!r}")
        if self.budget_fraction is not None and self.budget_fraction < 0:
            problems.append(
                f"budget_fraction must be >= 0, got {self.budget_fraction!r}"
            )
        if self.budget_limits is not None:
            for dim, value in self.budget_limits.items():
                if float(value) < 0:
                    problems.append(
                        f"budget limit for {dim!r} must be >= 0, got {value!r}"
                    )
        if self.deadline is not None and self.deadline <= 0:
            problems.append(f"deadline must be > 0 seconds, got {self.deadline!r}")
        if self.time_limit is not None and self.time_limit <= 0:
            problems.append(f"time_limit must be > 0 seconds, got {self.time_limit!r}")
        if self.max_monitors is not None and self.max_monitors < 0:
            problems.append(f"max_monitors must be >= 0, got {self.max_monitors!r}")
        return problems

    def validate(self) -> "SolveRequest":
        """Raise :class:`RequestValidationError` unless admissible."""
        problems = self.problems()
        if problems:
            raise RequestValidationError(problems)
        return self

    @property
    def site(self) -> str:
        """This request's fault-injection site label."""
        label = self.job_id if self.job_id else self.kind.value
        return f"service.job.{self.tenant}.{label}"


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------

#: Per-instance digest memo; models are immutable, so the digest is a
#: pure function of the identity.  Weak keys keep retired models
#: collectable.
_MODEL_DIGESTS: "weakref.WeakKeyDictionary[SystemModel, str]" = (
    weakref.WeakKeyDictionary()
)


def model_digest(model: SystemModel) -> str:
    """Content digest of a model's canonical serialized form.

    Two structurally identical models digest identically even when they
    are distinct instances, which is what lets tenants publish a model
    once and submit jobs against its ``model_ref``.
    """
    cached = _MODEL_DIGESTS.get(model)
    if cached is not None:
        return cached
    canonical = strict_dumps(model_to_dict(model), sort_keys=True)
    digest = hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()
    _MODEL_DIGESTS[model] = digest
    return digest


def _weights_key(weights: UtilityWeights | None) -> tuple[float, float, float, int]:
    weights = weights or UtilityWeights()
    return (weights.coverage, weights.redundancy, weights.richness, weights.redundancy_cap)


def request_digest(request: SolveRequest, mdigest: str) -> str:
    """Digest of everything that can influence a request's result.

    ``mdigest`` is the resolved :func:`model_digest` (requests with
    ``model_ref`` have no inline model to hash).  ``job_id``,
    ``deadline``, and ``tenant`` are deliberately excluded: they govern
    scheduling and correlation, never the solution, so requests
    differing only there legitimately share one cached result.
    """
    payload = {
        "kind": request.kind.value,
        "model": mdigest,
        "budget_limits": (
            None
            if request.budget_limits is None
            else sorted((k, float(v)) for k, v in request.budget_limits.items())
        ),
        "budget_fraction": request.budget_fraction,
        "weights": _weights_key(request.weights),
        "fractions": list(request.fractions),
        "min_utility": request.min_utility,
        "fully_cover": sorted(request.fully_cover),
        "forced_monitors": sorted(request.forced_monitors),
        "max_monitors": request.max_monitors,
        "backend": request.backend,
        "time_limit": request.time_limit,
        "max_nodes": request.max_nodes,
        "gap": request.gap,
        "epsilon": request.epsilon,
        "max_points": request.max_points,
    }
    canonical = strict_dumps(payload, sort_keys=True)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()
