"""Optimization-as-a-service: an async multi-tenant solve front.

The paper's pitch is that monitor-deployment optimization is cheap
enough to re-run whenever budgets, catalogs, or topologies change.
That only pays off operationally if the solver stack is *reachable as a
service* that many callers hit with repeated, similar problems — which
is exactly the traffic shape the PR 4 acceleration layer
(:class:`~repro.solver.session.SolveSession` warm starts,
:class:`~repro.optimize.family.ProblemFamily` shared formulation cores)
was built for.  This package exposes it that way:

* :mod:`repro.service.requests` — validated, hashable job descriptions
  (:class:`SolveRequest`) and the model/request digests requests are
  deduplicated on;
* :mod:`repro.service.cache` — the multi-tenant session/family cache
  (LRU by estimated bytes, idle TTL, hit/miss/eviction counters) and
  the per-tenant result cache behind request deduplication;
* :mod:`repro.service.service` — :class:`SolveService` itself: an
  asyncio job queue with a bounded worker set, per-tenant concurrency
  limits, bounded queues with *typed* backpressure (reject with a
  retry-after hint, never unbounded growth, never a silent drop),
  cancellation, family batching, and deadline propagation into the
  solver :class:`~repro.runtime.resilience.RetryPolicy`;
* :mod:`repro.service.protocol` — the line-delimited JSON protocol
  behind ``repro serve`` (stdin/stdout or a Unix socket);
* :mod:`repro.service.loadgen` — the seeded load generator behind
  ``repro loadgen`` and the F13 throughput benchmark.

Determinism contract: with the default configuration every job's
deployment, objective, utility, and status are **bit-identical** to a
direct cold solve of the same request (``problem.solve()``,
``budget_sweep()``, ``exact_frontier()``), whatever the admission
order, worker count, or cache state — see ``docs/service.md`` for why
each cache layer preserves this and which opt-ins relax it.
"""

from repro.service.cache import ResultCache, SessionCache
from repro.service.loadgen import LoadReport, generate_load
from repro.service.requests import (
    JobKind,
    RequestValidationError,
    SolveRequest,
    model_digest,
    request_digest,
)
from repro.service.service import (
    JobHandle,
    JobResult,
    JobStatus,
    QueueFullRejection,
    ServiceClosedRejection,
    ServiceConfig,
    ServiceRejection,
    SolveService,
    TenantBusyRejection,
    TenantPolicy,
)

__all__ = [
    "JobHandle",
    "JobKind",
    "JobResult",
    "JobStatus",
    "LoadReport",
    "QueueFullRejection",
    "RequestValidationError",
    "ResultCache",
    "ServiceClosedRejection",
    "ServiceConfig",
    "ServiceRejection",
    "SessionCache",
    "SolveRequest",
    "SolveService",
    "TenantBusyRejection",
    "TenantPolicy",
    "generate_load",
    "model_digest",
    "request_digest",
]
