"""Seeded load generator for the solve service.

Drives a :class:`~repro.service.service.SolveService` with a
deterministic mixed-tenant workload and reports throughput, latency
percentiles, and warm-cache hit rates.  The traffic shape models the
paper's operational story — many callers re-solving *similar* problems
as budgets and catalogs drift — so requests draw their parameters from
small per-kind pools: distinct enough to exercise the solver, repeated
enough that the digest-keyed caches do real work (the F13 benchmark
pins a >= 50% warm hit rate on this mix).

Everything is a pure function of ``seed``: the kind mix, the parameter
draws, and the tenant assignment come from one ``random.Random(seed)``
stream, so two runs against the same service configuration submit an
identical request sequence.  (Completion *order* under concurrency is
not deterministic — the determinism contract is about per-job results,
which the differential suite pins separately.)

Used three ways: the ``repro loadgen`` CLI entry, the
``benchmarks/test_f13_service_throughput.py`` benchmark, and the
service test-suite's traffic factory.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.core.model import SystemModel
from repro.obs.clock import SystemClock
from repro.service.requests import SolveRequest
from repro.service.service import (
    JobStatus,
    ServiceConfig,
    ServiceRejection,
    SolveService,
)

__all__ = ["LoadReport", "generate_load", "percentile", "traffic"]

#: Parameter pools the seeded mix draws from.  Small on purpose: the
#: workload is "repeated, similar problems", not an adversarial scan.
_SWEEP_POOL = (
    (0.1, 0.25, 0.5, 0.75),
    (0.2, 0.4, 0.6, 0.8),
    (0.15, 0.3, 0.45, 0.6, 0.75, 0.9),
)
_FRACTION_POOL = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9)
_MIN_UTILITY_POOL = (0.2, 0.35, 0.5)

#: Cumulative kind mix (sweep-heavy, per the service's motivating
#: traffic shape): 45% sweeps, 40% max-utility, 10% min-cost, 5%
#: frontier.
_KIND_CUTS = (("sweep", 0.45), ("max-utility", 0.85), ("min-cost", 0.95), ("frontier", 1.0))


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` by nearest-rank."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run measured.

    ``solve_units`` counts delivered solve answers — a sweep of N
    fractions delivers N, a frontier delivers its point count, single
    solves deliver 1 — whether computed fresh or answered warm;
    ``executed_jobs`` counts the jobs that actually occupied a worker
    (the rest were result-cache or dedup answers).  ``hit_rate`` is
    warm answers over lookups across both cache layers, counting an
    in-flight dedup join as a warm answer (the service avoided a solve
    because an identical request was already known): ``(result hits +
    dedup joins + session hits) / (result lookups + session lookups)``.
    """

    jobs: int
    completed: int
    failed: int
    rejections: int
    cached: int
    deduped: int
    executed_jobs: int
    solve_units: int
    wall_seconds: float
    jobs_per_minute: float
    solves_per_minute: float
    p50_seconds: float
    p99_seconds: float
    hit_rate: float
    counters: dict[str, float]

    def to_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "completed": self.completed,
            "failed": self.failed,
            "rejections": self.rejections,
            "cached": self.cached,
            "deduped": self.deduped,
            "executed_jobs": self.executed_jobs,
            "solve_units": self.solve_units,
            "wall_seconds": self.wall_seconds,
            "jobs_per_minute": self.jobs_per_minute,
            "solves_per_minute": self.solves_per_minute,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "hit_rate": self.hit_rate,
            "counters": dict(self.counters),
        }


def traffic(
    jobs: int,
    *,
    tenants: int = 4,
    seed: int = 0,
    model_ref: str | None = None,
    model: SystemModel | None = None,
    deadline: float | None = None,
) -> list[SolveRequest]:
    """The seeded mixed request sequence (pure function of the inputs)."""
    rng = random.Random(seed)
    requests: list[SolveRequest] = []
    for index in range(jobs):
        tenant = f"tenant-{rng.randrange(tenants)}"
        draw = rng.random()
        kind = next(name for name, cut in _KIND_CUTS if draw <= cut)
        common: dict[str, Any] = {
            "tenant": tenant,
            "kind": kind,
            "model": model,
            "model_ref": model_ref,
            "deadline": deadline,
            "job_id": f"job-{index}",
        }
        if kind == "sweep":
            common["fractions"] = rng.choice(_SWEEP_POOL)
        elif kind == "max-utility":
            common["budget_fraction"] = rng.choice(_FRACTION_POOL)
        elif kind == "min-cost":
            common["min_utility"] = rng.choice(_MIN_UTILITY_POOL)
        else:  # frontier
            common["max_points"] = 12
        requests.append(SolveRequest(**common))
    return requests


def _solve_units(request: SolveRequest, result_value: Any) -> int:
    if request.kind.value == "sweep":
        return len(request.fractions)
    if isinstance(result_value, list):
        return max(1, len(result_value))
    return 1


#: Counters whose deltas the report captures.
_REPORT_COUNTERS = (
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.evictions.lru",
    "service.cache.evictions.ttl",
    "service.results.hits",
    "service.results.misses",
    "service.jobs.submitted",
    "service.jobs.completed",
    "service.jobs.failed",
    "service.jobs.retries",
    "service.jobs.deduped",
    "service.jobs.cache_answered",
)


def generate_load(
    model: SystemModel,
    *,
    jobs: int = 200,
    tenants: int = 4,
    seed: int = 0,
    config: ServiceConfig | None = None,
    warmup: int = 0,
) -> LoadReport:
    """Run the seeded mixed workload against a fresh service and measure.

    ``warmup`` jobs from the same distribution run (and complete) first
    without being measured, so the report captures warm steady-state
    behaviour — the regime the service is for.  Rejections are handled
    the way a well-behaved client would: await an outstanding job, then
    resubmit; every rejection is counted.
    """
    return asyncio.run(
        _run_load(model, jobs=jobs, tenants=tenants, seed=seed, config=config, warmup=warmup)
    )


async def _run_load(
    model: SystemModel,
    *,
    jobs: int,
    tenants: int,
    seed: int,
    config: ServiceConfig | None,
    warmup: int,
) -> LoadReport:
    clock = SystemClock()
    baseline = {name: obs.counter(name).value for name in _REPORT_COUNTERS}
    async with SolveService(config) as service:
        ref = service.publish_model(model)
        if warmup:
            for request in traffic(
                warmup, tenants=tenants, seed=seed + 1, model_ref=ref
            ):
                await self_submitting(service, request)
            await service.drain()
        requests = traffic(jobs, tenants=tenants, seed=seed, model_ref=ref)
        latencies: list[float] = []
        completed = failed = rejections = cached = deduped = executed = units = 0
        outstanding: deque = deque()
        started = clock.now()

        async def _collect(handle: Any) -> None:
            nonlocal completed, failed, cached, deduped, executed, units
            result = await handle
            latencies.append(result.queue_seconds + result.run_seconds)
            if result.status is JobStatus.SUCCEEDED:
                completed += 1
                units += _solve_units(handle.request, result.value)
                if result.cached:
                    cached += 1
                elif result.deduped:
                    deduped += 1
                else:
                    executed += 1
            else:
                failed += 1

        for request in requests:
            while True:
                try:
                    handle = service.submit(request)
                    break
                except ServiceRejection as exc:
                    rejections += 1
                    if outstanding:
                        await _collect(outstanding.popleft())
                    else:
                        await asyncio.sleep(min(max(exc.retry_after, 0.001), 0.05))
            outstanding.append(handle)
        while outstanding:
            await _collect(outstanding.popleft())
        wall = max(1e-9, clock.now() - started)

    deltas = {
        name: obs.counter(name).value - baseline[name] for name in _REPORT_COUNTERS
    }
    result_lookups = deltas["service.results.hits"] + deltas["service.results.misses"]
    session_lookups = deltas["service.cache.hits"] + deltas["service.cache.misses"]
    warm_hits = (
        deltas["service.results.hits"]
        + deltas["service.jobs.deduped"]
        + deltas["service.cache.hits"]
    )
    lookups = result_lookups + session_lookups
    return LoadReport(
        jobs=jobs,
        completed=completed,
        failed=failed,
        rejections=rejections,
        cached=cached,
        deduped=deduped,
        executed_jobs=executed,
        solve_units=units,
        wall_seconds=wall,
        jobs_per_minute=60.0 * jobs / wall,
        solves_per_minute=60.0 * units / wall,
        p50_seconds=percentile(latencies, 0.50),
        p99_seconds=percentile(latencies, 0.99),
        hit_rate=warm_hits / lookups if lookups else 0.0,
        counters=deltas,
    )


async def self_submitting(service: SolveService, request: SolveRequest) -> Any:
    """Submit with polite backpressure handling; returns the handle."""
    while True:
        try:
            return service.submit(request)
        except ServiceRejection as exc:
            await asyncio.sleep(min(max(exc.retry_after, 0.001), 0.05))
