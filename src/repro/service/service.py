"""The asyncio solve service: admission, scheduling, execution.

:class:`SolveService` is an in-process job queue in front of the solver
stack.  Tenants submit :class:`~repro.service.requests.SolveRequest`
jobs; the service validates them, deduplicates them on request digests,
batches jobs that share warm solver state, and executes them on a
bounded set of worker slots.  The design commitments, in order:

* **Typed backpressure, never unbounded growth.**  Admission is a
  synchronous verdict: a request is either queued, answered from cache,
  joined to an identical in-flight job, or *rejected* with a
  :class:`ServiceRejection` carrying a ``retry_after`` hint.  Nothing
  is silently dropped and no queue grows without bound.
* **Determinism.**  With the default configuration every job's result
  is bit-identical to a direct solve of the same request (see
  ``docs/service.md``): warm :class:`~repro.optimize.family.
  ProblemFamily` cores compile bit-identical matrices (PR 4 contract),
  scipy-backed :class:`~repro.solver.session.SolveSession` objects are
  pass-throughs, and result-cache hits return the originally computed
  object.  Admission order, worker count, and cache state therefore
  cannot change what any tenant gets back.
* **Bounded concurrency.**  ``workers`` asyncio worker tasks each run
  one batch at a time in a thread (solves are sync, CPU-heavy work that
  releases the GIL inside numpy/scipy); per-tenant
  :class:`TenantPolicy` limits cap both queued and running jobs so one
  tenant cannot starve the rest.
* **Deadlines and cancellation.**  A request's relative ``deadline`` is
  measured from admission on the service's injected clock; expired jobs
  fail typed (status ``EXPIRED``) without occupying a worker, and the
  remaining budget is propagated into the solver
  :class:`~repro.runtime.resilience.RetryPolicy` timeout and the
  per-solve ``time_limit``.  Cancelling a pending job releases its
  queue slot immediately.
* **Structured failure.**  Deterministic solver verdicts
  (:class:`~repro.errors.ReproError` — infeasible, invalid) fail
  immediately; transient faults (anything else, including injected
  ones) are retried with deterministic backoff up to
  ``max_retries`` and then reported as a structured
  :class:`~repro.runtime.resilience.TaskFailure`.

Every stage lands on ``service.*`` counters, gauges, and histograms so
queue depth, latency, and cache behaviour are observable through
:mod:`repro.obs` — the load generator reads exact per-job latencies
from its own records and the service's aggregates from the registry.
"""

from __future__ import annotations

import asyncio
import enum
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro import obs
from repro.core.model import SystemModel
from repro.errors import ReproError
from repro.metrics.cost import Budget
from repro.metrics.utility import UtilityWeights
from repro.obs.clock import Clock, SystemClock
from repro.optimize.frontier import exact_frontier
from repro.optimize.pareto import budget_sweep
from repro.optimize.problem import MaxUtilityProblem, MinCostProblem
from repro.runtime import faults
from repro.runtime.pool import PersistentPool
from repro.runtime.resilience import RetryPolicy, TaskFailure
from repro.service.cache import CacheEntry, ResultCache, SessionCache
from repro.service.requests import (
    JobKind,
    RequestValidationError,
    SolveRequest,
    model_digest,
    request_digest,
)

__all__ = [
    "JobHandle",
    "JobResult",
    "JobStatus",
    "QueueFullRejection",
    "ServiceClosedRejection",
    "ServiceConfig",
    "ServiceRejection",
    "SolveService",
    "TenantBusyRejection",
    "TenantPolicy",
]

#: Bucket bounds for the batch-size histogram (jobs per worker slot).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


# ----------------------------------------------------------------------
# admission verdicts
# ----------------------------------------------------------------------


class ServiceRejection(ReproError):
    """Admission refused; carries a ``retry_after`` hint in seconds.

    Backpressure is always *typed*: the caller learns exactly why the
    request did not enter the queue and roughly when to try again —
    the alternative (an unbounded queue, or a silent drop) hides
    overload until it is an outage.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(f"{message} (retry after ~{retry_after:.2f}s)")
        self.retry_after = retry_after


class QueueFullRejection(ServiceRejection):
    """The service-wide pending queue is at its bound."""


class TenantBusyRejection(ServiceRejection):
    """The submitting tenant is at its own pending bound."""


class ServiceClosedRejection(ServiceRejection):
    """The service is closed (or closing) and admits nothing."""

    def __init__(self) -> None:
        super().__init__("the service is closed", retry_after=0.0)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission and concurrency limits.

    ``max_running`` counts *worker slots* (a batch of family-shared
    jobs occupies one slot), so a tenant flooding cheap jobs cannot
    monopolize the worker set; ``max_pending`` bounds that tenant's
    share of the queue.
    """

    max_running: int = 2
    max_pending: int = 16

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ReproError(f"max_running must be >= 1, got {self.max_running!r}")
        if self.max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {self.max_pending!r}")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`SolveService` can be tuned with.

    Parameters
    ----------
    workers:
        Worker slots — batches executing concurrently (each in a
        thread via ``asyncio.to_thread``).
    queue_limit:
        Service-wide bound on pending jobs; admission past it returns
        :class:`QueueFullRejection`.
    default_policy / tenant_policies:
        Per-tenant limits (specific tenants override the default).
    max_retries:
        Extra attempts for *transient* job faults (deterministic
        :class:`~repro.errors.ReproError` verdicts never retry).
    backoff_base / backoff_cap:
        Deterministic exponential backoff between retries, as on
        :class:`~repro.runtime.resilience.RetryPolicy` (0 disables
        sleeping — the default keeps tests and benchmarks fast; the
        schedule is still deterministic).
    batch_limit:
        Most jobs one worker slot executes back-to-back against one
        warm cache entry.
    presolve:
        Route solves through the exact presolve pipeline.  Off by
        default: presolve can legitimately break ties between equally
        optimal deployments, which would violate the service's
        bit-identity contract against direct no-presolve oracles —
        opt in when warm-solve throughput matters more (objectives and
        statuses stay exact either way; see ``docs/service.md``).
    cache_max_bytes / cache_idle_ttl / result_cache_entries:
        Bounds for the :class:`~repro.service.cache.SessionCache` and
        :class:`~repro.service.cache.ResultCache`.
    clock:
        Injected time source for admission stamps, deadlines, and
        latency metrics (tests drive a
        :class:`~repro.obs.clock.ManualClock`).
    pool:
        Optional :class:`~repro.runtime.pool.PersistentPool` made
        ambient for the duration of every batch, so ``parallel-bb``
        solves reuse one executor.  Lifecycle stays with the caller.
    bb_workers:
        Branch-and-bound subtree fan-out for sessions created by the
        cache (bit-identical at any count by the PR 6 contract).
    """

    workers: int = 2
    queue_limit: int = 64
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenant_policies: Mapping[str, TenantPolicy] = field(default_factory=dict)
    max_retries: int = 1
    backoff_base: float = 0.0
    backoff_cap: float = 2.0
    batch_limit: int = 8
    presolve: bool = False
    cache_max_bytes: int = 64 << 20
    cache_idle_ttl: float | None = None
    result_cache_entries: int = 256
    clock: Clock | None = None
    pool: PersistentPool | None = None
    bb_workers: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers!r}")
        if self.queue_limit < 1:
            raise ReproError(f"queue_limit must be >= 1, got {self.queue_limit!r}")
        if self.batch_limit < 1:
            raise ReproError(f"batch_limit must be >= 1, got {self.batch_limit!r}")
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries!r}")
        object.__setattr__(self, "tenant_policies", dict(self.tenant_policies))

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_policy)


# ----------------------------------------------------------------------
# job records
# ----------------------------------------------------------------------


class JobStatus(enum.Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"


#: Statuses a job can end in.
TERMINAL_STATUSES = frozenset(
    {JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED, JobStatus.EXPIRED}
)


@dataclass(frozen=True)
class JobResult:
    """How one job ended, with the payload or the structured failure.

    ``value`` is the raw solver payload — an
    :class:`~repro.optimize.deployment.OptimizationResult`, a list of
    :class:`~repro.optimize.pareto.SweepPoint`, or a list of
    :class:`~repro.optimize.frontier.FrontierPoint` — exactly the
    object a direct call would have returned (cache hits return the
    originally computed object itself).
    """

    status: JobStatus
    tenant: str
    kind: JobKind
    digest: str
    job_id: str | None = None
    value: Any = None
    failure: TaskFailure | None = None
    #: Answered from the result cache without touching the queue.
    cached: bool = False
    #: Joined to an identical in-flight job (shared one execution).
    deduped: bool = False
    attempts: int = 0
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    #: Deadline budget left when execution started (None = no deadline).
    deadline_remaining: float | None = None

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.SUCCEEDED


class JobHandle:
    """The caller's view of one submitted job.

    Await the handle (or its :attr:`future`) for the terminal
    :class:`JobResult`; the future never raises on job failure — failed
    jobs resolve to a ``FAILED`` result carrying the structured
    :class:`~repro.runtime.resilience.TaskFailure` — so awaiting a
    fleet of handles needs no per-handle exception plumbing.
    """

    __slots__ = (
        "request",
        "digest",
        "future",
        "admitted_at",
        "status",
        "cancel_requested",
        "_service",
    )

    def __init__(
        self,
        service: "SolveService",
        request: SolveRequest,
        digest: str,
        future: "asyncio.Future[JobResult]",
        admitted_at: float,
    ):
        self._service = service
        self.request = request
        self.digest = digest
        self.future = future
        self.admitted_at = admitted_at
        self.status = JobStatus.PENDING
        self.cancel_requested = False

    def __await__(self):
        return self.future.__await__()

    @property
    def done(self) -> bool:
        return self.future.done()

    def cancel(self) -> bool:
        """Cancel this job if it has not started; see ``SolveService.cancel``."""
        return self._service.cancel(self)


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------


class SolveService:
    """Async multi-tenant front over the warm solver stack.

    Typical use::

        config = ServiceConfig(workers=4)
        async with SolveService(config) as service:
            handle = service.submit(request)
            result = await handle

    ``submit`` must be called from the event-loop thread (it is a
    synchronous admission verdict, not a coroutine, so rejection is
    immediate and typed).  The service may also be constructed idle and
    started explicitly with :meth:`start` — jobs submitted before then
    queue up, which is how the deadline tests drive expiry with a
    :class:`~repro.obs.clock.ManualClock` and zero wall-clock sleeps.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self._clock = self.config.clock or SystemClock()
        self.sessions = SessionCache(
            max_bytes=self.config.cache_max_bytes,
            idle_ttl=self.config.cache_idle_ttl,
            clock=self._clock,
        )
        self.results = ResultCache(max_entries=self.config.result_cache_entries)
        self._models: dict[str, SystemModel] = {}
        self._pending: deque[JobHandle] = deque()
        self._pending_per_tenant: dict[str, int] = {}
        self._running_per_tenant: dict[str, int] = {}
        self._inflight: dict[tuple[str, str], JobHandle] = {}
        self._cond: asyncio.Condition | None = None
        self._workers: list[asyncio.Task[None]] = []
        self._running_batches = 0
        self._started = False
        self._closed = False
        #: EWMA of recent per-job run seconds, feeding retry_after hints.
        self._ewma_seconds = 0.0

    # -- lifecycle ---------------------------------------------------------

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._started:
            return
        if self._closed:
            raise ServiceClosedRejection()
        self._started = True
        loop = asyncio.get_running_loop()
        self._condition()
        self._workers = [
            loop.create_task(self._worker(), name=f"solve-service-worker-{i}")
            for i in range(self.config.workers)
        ]

    async def drain(self) -> None:
        """Wait until no job is pending or running."""
        cond = self._condition()
        async with cond:
            await cond.wait_for(
                lambda: not self._pending and self._running_batches == 0
            )

    async def aclose(self, *, drain: bool = True) -> None:
        """Stop the service; with ``drain`` finish queued work first.

        Without ``drain``, still-pending jobs resolve as ``CANCELLED``
        (their futures complete — nothing is left dangling); running
        batches always finish either way, since a thread mid-solve
        cannot be preempted.
        """
        if self._started and drain and not self._closed:
            await self.drain()
        self._closed = True
        cond = self._condition()
        async with cond:
            while self._pending:
                handle = self._pending.popleft()
                self._note_unqueued(handle)
                self._finish(handle, self._terminal(handle, JobStatus.CANCELLED))
                obs.counter("service.jobs.cancelled").inc()
            cond.notify_all()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
            self._workers = []

    # -- models ------------------------------------------------------------

    def publish_model(self, model: SystemModel) -> str:
        """Register a model for by-reference submission; returns its digest."""
        digest = model_digest(model)
        self._models.setdefault(digest, model)
        obs.counter("service.models.published").inc()
        return digest

    def _resolve_model(self, request: SolveRequest) -> SystemModel:
        if request.model is not None:
            return request.model
        model = self._models.get(request.model_ref or "")
        if model is None:
            raise RequestValidationError(
                [f"unknown model_ref {request.model_ref!r}; publish the model first"]
            )
        return model

    # -- admission ---------------------------------------------------------

    def submit(self, request: SolveRequest) -> JobHandle:
        """Admit one request: queue it, answer it, join it, or reject it.

        Raises
        ------
        RequestValidationError
            The request is malformed (every problem listed) or names an
            unpublished ``model_ref``.
        ServiceRejection
            Typed backpressure: the service is closed, the global queue
            is full, or the tenant is at its pending bound.  The
            exception's ``retry_after`` estimates when capacity frees.
        """
        if self._closed:
            obs.counter("service.jobs.rejected.closed").inc()
            raise ServiceClosedRejection()
        request.validate()
        model = self._resolve_model(request)
        mdigest = model_digest(model)
        digest = request_digest(request, mdigest)
        loop = asyncio.get_running_loop()
        now = self._clock.now()
        future: asyncio.Future[JobResult] = loop.create_future()
        handle = JobHandle(self, request, digest, future, now)
        obs.counter("service.jobs.submitted").inc()

        cached = self.results.get(request.tenant, digest)
        if cached is not None:
            self._finish(
                handle,
                JobResult(
                    status=JobStatus.SUCCEEDED,
                    tenant=request.tenant,
                    kind=request.kind,
                    digest=digest,
                    job_id=request.job_id,
                    value=cached,
                    cached=True,
                ),
            )
            obs.counter("service.jobs.cache_answered").inc()
            return handle

        primary = self._inflight.get((request.tenant, digest))
        if primary is not None and not primary.future.done():
            self._join(primary, handle)
            obs.counter("service.jobs.deduped").inc()
            return handle

        pending = len(self._pending)
        if pending >= self.config.queue_limit:
            obs.counter("service.jobs.rejected.queue_full").inc()
            raise QueueFullRejection(
                f"pending queue is full ({pending}/{self.config.queue_limit})",
                retry_after=self._retry_after(pending),
            )
        policy = self.config.policy_for(request.tenant)
        tenant_pending = self._pending_per_tenant.get(request.tenant, 0)
        if tenant_pending >= policy.max_pending:
            obs.counter("service.jobs.rejected.tenant_busy").inc()
            raise TenantBusyRejection(
                f"tenant {request.tenant!r} has {tenant_pending} pending jobs "
                f"(bound {policy.max_pending})",
                retry_after=self._retry_after(tenant_pending),
            )

        self._pending.append(handle)
        self._pending_per_tenant[request.tenant] = tenant_pending + 1
        self._inflight[(request.tenant, digest)] = handle
        self._publish_queue_depth()
        cond = self._cond
        if cond is not None:
            # Wake a waiting worker without blocking admission.
            loop.create_task(self._notify(cond))
        return handle

    def cancel(self, handle: JobHandle) -> bool:
        """Cancel a pending job (``True``) or flag a running one (``False``).

        A pending job leaves the queue immediately — its slot is
        released and its future resolves ``CANCELLED``.  A job already
        executing in a worker thread cannot be preempted; the flag
        makes any *batched* jobs behind it in the same slot (and any
        retries) observe the cancellation at the next boundary.
        """
        if handle.future.done():
            return False
        if handle.status is JobStatus.PENDING:
            try:
                self._pending.remove(handle)
            except ValueError:
                # Raced with a worker picking it up; fall through to
                # the running-job path.
                pass
            else:
                self._note_unqueued(handle)
                self._finish(handle, self._terminal(handle, JobStatus.CANCELLED))
                obs.counter("service.jobs.cancelled").inc()
                self._publish_queue_depth()
                return True
        handle.cancel_requested = True
        return False

    # -- scheduling --------------------------------------------------------

    async def _notify(self, cond: asyncio.Condition) -> None:
        async with cond:
            cond.notify_all()

    def _admissible(self, handle: JobHandle) -> bool:
        policy = self.config.policy_for(handle.request.tenant)
        running = self._running_per_tenant.get(handle.request.tenant, 0)
        return running < policy.max_running

    def _entry_key(self, handle: JobHandle) -> tuple:
        """The session-cache key a job will check out (batching key)."""
        request = handle.request
        weights = request.weights or UtilityWeights()
        model = self._resolve_model(request)
        return (
            request.tenant,
            model_digest(model),
            (weights.coverage, weights.redundancy, weights.richness, weights.redundancy_cap),
            request.backend,
            self.config.presolve,
        )

    def _next_batch(self) -> list[JobHandle] | None:
        """Pop the next admissible job plus its family cohort (or None).

        Caller holds the condition lock.  Head-of-line skip: a job
        whose tenant is at its running bound does not block other
        tenants' jobs behind it.  The cohort is every later pending job
        sharing the head job's cache-entry key — they run back-to-back
        in one slot against one warm family, preserving per-job results
        exactly (each job is still its own solve).
        """
        head = None
        for candidate in self._pending:
            if self._admissible(candidate):
                head = candidate
                break
        if head is None:
            return None
        self._pending.remove(head)
        batch = [head]
        key = self._entry_key(head)
        if self.config.batch_limit > 1:
            cohort = [
                h
                for h in self._pending
                if h.request.tenant == head.request.tenant
                and self._entry_key(h) == key
            ][: self.config.batch_limit - 1]
            for h in cohort:
                self._pending.remove(h)
                batch.append(h)
        tenant = head.request.tenant
        for h in batch:
            h.status = JobStatus.RUNNING
            self._note_unqueued(h, running=True)
        self._running_per_tenant[tenant] = self._running_per_tenant.get(tenant, 0) + 1
        self._running_batches += 1
        self._publish_queue_depth()
        obs.histogram("service.batch_size", _BATCH_BUCKETS).observe(float(len(batch)))
        return batch

    async def _worker(self) -> None:
        cond = self._condition()
        while True:
            async with cond:
                await cond.wait_for(
                    lambda: self._closed
                    or any(self._admissible(h) for h in self._pending)
                )
                if self._closed and not self._pending:
                    return
                batch = self._next_batch()
            if batch is None:
                continue
            try:
                outcomes = await asyncio.to_thread(self._run_batch, batch)
            finally:
                tenant = batch[0].request.tenant
                async with cond:
                    self._running_per_tenant[tenant] = max(
                        0, self._running_per_tenant.get(tenant, 0) - 1
                    )
                    self._running_batches -= 1
                    cond.notify_all()
            for handle, result in outcomes:
                self._finish(handle, result)

    # -- execution (worker thread) -----------------------------------------

    def _run_batch(
        self, batch: list[JobHandle]
    ) -> list[tuple[JobHandle, JobResult]]:
        """Execute a batch against one warm cache entry, job by job."""
        head = batch[0].request
        model = self._resolve_model(head)
        entry = self.sessions.checkout(
            head.tenant,
            model,
            model_digest(model),
            head.weights,
            head.backend,
            presolve=self.config.presolve,
            bb_workers=self.config.bb_workers,
        )
        outcomes: list[tuple[JobHandle, JobResult]] = []
        with entry.lock:
            for handle in batch:
                outcomes.append((handle, self._run_job(entry, handle)))
        self.sessions.note_bytes(entry)
        return outcomes

    def _run_job(self, entry: CacheEntry, handle: JobHandle) -> JobResult:
        request = handle.request
        started = self._clock.now()
        queue_seconds = max(0.0, started - handle.admitted_at)
        obs.histogram("service.queue_wait_seconds").observe(queue_seconds)
        if handle.cancel_requested:
            obs.counter("service.jobs.cancelled").inc()
            return self._terminal(handle, JobStatus.CANCELLED, queue_seconds=queue_seconds)

        remaining: float | None = None
        if request.deadline is not None:
            remaining = request.deadline - queue_seconds
            if remaining <= 0.0:
                obs.counter("service.jobs.expired").inc()
                failure = TaskFailure(
                    index=0,
                    stage="deadline",
                    attempts=0,
                    error_type="DeadlineExpired",
                    message=(
                        f"deadline of {request.deadline:.3f}s expired "
                        f"{-remaining:.3f}s before execution"
                    ),
                )
                return self._terminal(
                    handle,
                    JobStatus.EXPIRED,
                    failure=failure,
                    queue_seconds=queue_seconds,
                )

        policy = RetryPolicy(
            timeout=remaining,
            max_retries=self.config.max_retries,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
        )
        attempts = 0
        failure: TaskFailure | None = None
        value: Any = None
        status = JobStatus.SUCCEEDED
        while True:
            attempts += 1
            try:
                with obs.span(
                    "service.execute",
                    tenant=request.tenant,
                    kind=request.kind.value,
                    attempt=attempts,
                ):
                    faults.poke(request.site)
                    value = self._dispatch(entry, request, policy)
                break
            except ReproError as exc:
                # A deterministic verdict about the problem (infeasible,
                # invalid) — retrying cannot change it.
                obs.counter("service.jobs.verdict_failures").inc()
                failure = TaskFailure(
                    index=0,
                    stage="service",
                    attempts=attempts,
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
                status = JobStatus.FAILED
                break
            except Exception as exc:
                # Transient fault (worker crash, injected error, ...):
                # retry on the deterministic backoff schedule, then
                # report structured failure.
                obs.counter("service.jobs.transient_faults").inc()
                if handle.cancel_requested or attempts >= policy.attempts:
                    failure = TaskFailure(
                        index=0,
                        stage="service",
                        attempts=attempts,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                    status = JobStatus.FAILED
                    break
                obs.counter("service.jobs.retries").inc()
                backoff = policy.delay(attempts)
                if backoff > 0:
                    time.sleep(backoff)

        run_seconds = max(0.0, self._clock.now() - started)
        obs.histogram("service.latency_seconds").observe(queue_seconds + run_seconds)
        self._ewma_seconds = (
            run_seconds
            if self._ewma_seconds == 0.0
            else 0.8 * self._ewma_seconds + 0.2 * run_seconds
        )
        if status is JobStatus.SUCCEEDED:
            obs.counter("service.jobs.completed").inc()
            self.results.put(request.tenant, handle.digest, value)
        else:
            obs.counter("service.jobs.failed").inc()
        return JobResult(
            status=status,
            tenant=request.tenant,
            kind=request.kind,
            digest=handle.digest,
            job_id=request.job_id,
            value=value,
            failure=failure,
            attempts=attempts,
            queue_seconds=queue_seconds,
            run_seconds=run_seconds,
            deadline_remaining=remaining,
        )

    def _dispatch(
        self, entry: CacheEntry, request: SolveRequest, policy: RetryPolicy
    ) -> Any:
        """Run one request against the entry's warm family and session."""
        model = entry.model
        weights = request.weights or UtilityWeights()
        time_limit = request.time_limit
        if policy.timeout is not None:
            time_limit = (
                policy.timeout
                if time_limit is None
                else min(time_limit, policy.timeout)
            )
        kind = request.kind
        if kind is JobKind.MAX_UTILITY:
            budget = (
                Budget(request.budget_limits)
                if request.budget_limits is not None
                else Budget.fraction_of_total(model, request.budget_fraction or 0.0)
            )
            problem = MaxUtilityProblem(
                model,
                budget,
                weights,
                forced_monitors=request.forced_monitors,
                max_monitors=request.max_monitors,
                family=entry.family,
            )
            if request.backend == "fallback":
                return problem.solve_with_fallback(
                    time_limit=time_limit,
                    presolve=self.config.presolve,
                    max_nodes=request.max_nodes,
                    gap=request.gap,
                    bb_workers=self.config.bb_workers,
                )
            return problem.solve(
                request.backend,
                time_limit=time_limit,
                session=entry.session,
                max_nodes=request.max_nodes,
                gap=request.gap,
            )
        if kind is JobKind.MIN_COST:
            problem = MinCostProblem(
                model,
                min_utility=request.min_utility,
                fully_cover=request.fully_cover,
                weights=weights,
            )
            return problem.solve(
                request.backend,
                time_limit=time_limit,
                session=entry.session,
                max_nodes=request.max_nodes,
                gap=request.gap,
            )
        if kind is JobKind.SWEEP:
            return budget_sweep(
                model,
                list(request.fractions),
                weights,
                backend=request.backend,
                time_limit=time_limit,
                workers=1,
                presolve=self.config.presolve,
                session=entry.session,
                max_nodes=request.max_nodes,
                gap=request.gap,
                family=entry.family,
            )
        if kind is JobKind.FRONTIER:
            return exact_frontier(
                model,
                weights,
                backend=request.backend,
                epsilon=request.epsilon,
                max_points=request.max_points,
                time_limit=time_limit,
                presolve=self.config.presolve,
                max_nodes=request.max_nodes,
                gap=request.gap,
            )
        raise RequestValidationError([f"unhandled job kind {kind!r}"])

    # -- bookkeeping -------------------------------------------------------

    def _terminal(
        self,
        handle: JobHandle,
        status: JobStatus,
        *,
        failure: TaskFailure | None = None,
        queue_seconds: float = 0.0,
    ) -> JobResult:
        return JobResult(
            status=status,
            tenant=handle.request.tenant,
            kind=handle.request.kind,
            digest=handle.digest,
            job_id=handle.request.job_id,
            failure=failure,
            queue_seconds=queue_seconds,
        )

    def _join(self, primary: JobHandle, follower: JobHandle) -> None:
        """Resolve ``follower`` from ``primary``'s eventual result."""

        def _propagate(done: "asyncio.Future[JobResult]") -> None:
            if follower.future.done():
                return
            result = done.result()
            follower.status = result.status
            follower.future.set_result(
                replace(result, job_id=follower.request.job_id, deduped=True)
            )

        primary.future.add_done_callback(_propagate)

    def _finish(self, handle: JobHandle, result: JobResult) -> None:
        handle.status = result.status
        self._inflight.pop((handle.request.tenant, handle.digest), None)
        if not handle.future.done():
            handle.future.set_result(result)

    def _note_unqueued(self, handle: JobHandle, *, running: bool = False) -> None:
        tenant = handle.request.tenant
        count = self._pending_per_tenant.get(tenant, 0) - 1
        if count <= 0:
            self._pending_per_tenant.pop(tenant, None)
        else:
            self._pending_per_tenant[tenant] = count
        if not running:
            self._inflight.pop((tenant, handle.digest), None)

    def _retry_after(self, depth: int) -> float:
        per_job = max(self._ewma_seconds, 0.05)
        return max(0.05, depth * per_job / max(1, self.config.workers))

    def _publish_queue_depth(self) -> None:
        obs.gauge("service.queue_depth").set(float(len(self._pending)))

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Structural snapshot for the protocol's ``stats`` op and tests."""
        return {
            "pending": len(self._pending),
            "running_batches": self._running_batches,
            "workers": self.config.workers,
            "closed": self._closed,
            "models": len(self._models),
            "sessions": self.sessions.snapshot(),
            "results": len(self.results),
        }
