"""Multi-tenant solver-state caches with eviction and counters.

Two caches back the service, both partitioned by tenant (one tenant's
warm state is never visible to — and never evicted by pressure from —
another tenant's key space alone; the byte budget is shared, which is
the backpressure story: a tenant flooding distinct models evicts its
own oldest entries first because they are the least recently used):

* :class:`SessionCache` holds the expensive warm state — one
  :class:`~repro.optimize.family.ProblemFamily` (shared formulation
  cores) plus one :class:`~repro.solver.session.SolveSession` (presolve
  memo, incumbent seeds, LP caches) per ``(tenant, model, weights,
  backend, presolve)`` key — bounded by **estimated bytes** with LRU
  eviction and an optional idle TTL.  Neither object is thread-safe,
  so every entry carries a lock; the service holds it for the duration
  of a job (or a batch) touching the entry.
* :class:`ResultCache` holds completed job payloads keyed by
  :func:`~repro.service.requests.request_digest`, bounded by entry
  count per tenant.  A hit returns the originally computed result
  object — deduplication is exact by construction, not merely
  equivalent.

Every hit, miss, insertion, and eviction lands on ``service.cache.*`` /
``service.results.*`` counters (and gauges for live bytes/entries), so
``registry_snapshot.json`` reconciles exactly with the insert/evict
sequence a test observes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.core.model import SystemModel
from repro.metrics.utility import UtilityWeights
from repro.obs.clock import Clock, SystemClock
from repro.optimize.family import ProblemFamily
from repro.solver.session import SolveSession

__all__ = ["CacheEntry", "ResultCache", "SessionCache"]

#: Fallback byte estimate for an entry whose family has not compiled a
#: core yet (a fresh checkout that has not executed a job).
_EMPTY_ENTRY_BYTES = 4096


@dataclass
class CacheEntry:
    """One tenant's warm solver state for one (model, weights, backend)."""

    key: tuple
    tenant: str
    model: SystemModel
    family: ProblemFamily
    session: SolveSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    nbytes: int = _EMPTY_ENTRY_BYTES
    last_used: float = 0.0
    uses: int = 0

    def refresh_bytes(self) -> int:
        """Re-estimate this entry's footprint from its live state."""
        self.nbytes = max(
            _EMPTY_ENTRY_BYTES,
            self.family.estimated_bytes() + self.session.estimated_bytes(),
        )
        return self.nbytes


class SessionCache:
    """LRU-by-bytes + idle-TTL cache of per-tenant sessions and families.

    Parameters
    ----------
    max_bytes:
        Estimated-byte budget across all tenants.  When an insertion
        pushes the total over budget, least-recently-used entries are
        evicted until it fits — except the entry just touched, which is
        always retained (a cache that evicts its only user thrashes
        forever).
    idle_ttl:
        Seconds of disuse after which an entry is evicted on the next
        :meth:`checkout` (lazy sweep — no background timers, so tests
        drive it deterministically with a
        :class:`~repro.obs.clock.ManualClock`).  ``None`` disables it.
    clock:
        Injected time source; defaults to the system clock.

    Eviction never breaks in-flight work: a job holds a strong
    reference (and the entry lock) while executing, so an evicted entry
    finishes its current job and is then collected — only *future*
    checkouts rebuild cold state.  Results are unaffected either way;
    see the determinism contract in ``docs/service.md``.
    """

    def __init__(
        self,
        max_bytes: int = 64 << 20,
        idle_ttl: float | None = None,
        clock: Clock | None = None,
    ):
        self.max_bytes = int(max_bytes)
        self.idle_ttl = idle_ttl
        self._clock = clock or SystemClock()
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()

    # -- public API --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Estimated bytes across all live entries."""
        return sum(entry.nbytes for entry in self._entries.values())

    def checkout(
        self,
        tenant: str,
        model: SystemModel,
        mdigest: str,
        weights: UtilityWeights | None,
        backend: str,
        *,
        presolve: bool = False,
        bb_workers: int | None = None,
    ) -> CacheEntry:
        """The warm entry for this key, creating (and evicting) as needed.

        The caller must acquire ``entry.lock`` before touching the
        family or session — both hold live, mutable solver state.
        """
        weights = weights or UtilityWeights()
        key = (
            tenant,
            mdigest,
            (weights.coverage, weights.redundancy, weights.richness, weights.redundancy_cap),
            backend,
            presolve,
        )
        now = self._clock.now()
        with self._lock:
            self._sweep_idle(now)
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.last_used = now
                entry.uses += 1
                obs.counter("service.cache.hits").inc()
            else:
                entry = CacheEntry(
                    key=key,
                    tenant=tenant,
                    model=model,
                    family=ProblemFamily(model, weights),
                    session=SolveSession(
                        backend, presolve=presolve, bb_workers=bb_workers
                    ),
                    last_used=now,
                    uses=1,
                )
                self._entries[key] = entry
                obs.counter("service.cache.misses").inc()
                self._evict_over_budget(keep=key)
            self._publish_gauges()
            return entry

    def note_bytes(self, entry: CacheEntry) -> None:
        """Refresh an entry's byte estimate after a job ran against it.

        Called by the service once per job, outside the entry lock's
        critical section cost (the estimate only reads counts).  Growth
        can push the cache over budget, so the LRU sweep runs here too.
        """
        entry.refresh_bytes()
        with self._lock:
            if entry.key in self._entries:
                self._evict_over_budget(keep=entry.key)
            self._publish_gauges()

    def snapshot(self) -> dict[str, Any]:
        """Cheap structural view for ``stats`` endpoints and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "total_bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "tenants": sorted({e.tenant for e in self._entries.values()}),
            }

    # -- internals (callers hold self._lock) -------------------------------

    def _sweep_idle(self, now: float) -> None:
        if self.idle_ttl is None:
            return
        stale = [
            key
            for key, entry in self._entries.items()
            if now - entry.last_used > self.idle_ttl
        ]
        for key in stale:
            del self._entries[key]
            obs.counter("service.cache.evictions.ttl").inc()

    def _evict_over_budget(self, keep: tuple) -> None:
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            oldest = next(iter(self._entries))
            if oldest == keep:
                # The protected entry is the LRU head; evict the next
                # oldest instead (or stop if it is the only one left).
                keys = iter(self._entries)
                next(keys)
                oldest = next(keys, None)
                if oldest is None:
                    return
            del self._entries[oldest]
            obs.counter("service.cache.evictions.lru").inc()

    def _publish_gauges(self) -> None:
        obs.gauge("service.cache.bytes").set(float(self.total_bytes))
        obs.gauge("service.cache.entries").set(float(len(self._entries)))


class ResultCache:
    """Per-tenant completed-result store behind request deduplication.

    Values are whatever the service finished a job with (the
    :class:`~repro.service.service.JobResult` payload); keys are
    :func:`~repro.service.requests.request_digest` values, so a hit is
    exact — the digest covers everything that can influence the result.
    Bounded per tenant by entry count (results are small: a deployment,
    an objective, a stats dict — byte accounting would be noise).
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = int(max_entries)
        self._tenants: dict[str, OrderedDict[str, Any]] = {}
        self._lock = threading.Lock()

    def get(self, tenant: str, digest: str) -> Any | None:
        with self._lock:
            store = self._tenants.get(tenant)
            if store is None or digest not in store:
                obs.counter("service.results.misses").inc()
                return None
            store.move_to_end(digest)
            obs.counter("service.results.hits").inc()
            return store[digest]

    def put(self, tenant: str, digest: str, value: Any) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            store = self._tenants.setdefault(tenant, OrderedDict())
            if digest in store:
                store.move_to_end(digest)
            store[digest] = value
            obs.counter("service.results.insertions").inc()
            while len(store) > self.max_entries:
                store.popitem(last=False)
                obs.counter("service.results.evictions").inc()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(store) for store in self._tenants.values())
